//! # minato-exec — the elastic role-fluid executor
//!
//! One pool of worker threads serves every stage of a loader pipeline.
//! Each stage is a **role** — an implementation of [`RoleStep`] that
//! performs one bounded unit of work per call (a ticket chunk, one
//! slow-resume burst, one batch-assembly pass). Workers *bid* for a role
//! at safe points (step boundaries), guided by a per-role **budget**
//! vector that a scheduler updates at runtime, so capacity migrates to
//! whichever stage is the bottleneck within one refresh interval.
//!
//! Two execution modes:
//!
//! * **Fixed** ([`ExecConfig::fixed`]) — every role owns a static slice
//!   of the pool (`RoleSpec::threads`); a worker never leaves its role
//!   and parks when its rank exceeds the role's budget. This reproduces
//!   a classic dedicated-thread runtime (loader workers gated by an
//!   active limit, dedicated slow/batch workers) exactly, and is the
//!   baseline arm of the `exec_elastic` ablation.
//! * **Elastic** ([`ExecConfig::elastic`]) — workers re-bid after every
//!   lease, preferring roles with a budget deficit and *stealing* into
//!   roles at/over budget when nothing else has work. Per-role
//!   occupancy, steal, and role-switch counters make the migration
//!   observable ([`ExecStats`]).
//!
//! Roles can be registered dynamically, so one pool can serve several
//! loaders as tenants ([`SharedExecutor`]): each tenant registers its
//! roles, budgets are set per role, and a finished tenant's roles are
//! pruned while the pool keeps running for the others.
//!
//! ## Lifecycle of a role
//!
//! ```text
//!          bid/claim            step() -> Progress | Idle
//!  [idle] ----------> [leased] ---------------------------.
//!    ^                    |                               |
//!    |   lease ends       | step() -> Exhausted           |
//!    '--------------------+<------------------------------'
//!                         v
//!                    [exhausted] --(last occupant leaves)--> finish()
//! ```
//!
//! `finish` runs exactly once, after the role is exhausted and its last
//! occupant has left — the natural place for close-cascade duties
//! (closing the queues the role fed). A step may still be invoked
//! concurrently with or after `finish` in rare races (a worker that
//! claimed the role just before it was marked exhausted); implementations
//! must tolerate that by returning [`StepOutcome::Exhausted`].

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

pub mod tenant;

pub use tenant::{
    Admission, PlacementPolicy, PoolPlacer, TenantCapacity, TenantCounters, TenantEvent, TenantId,
    TenantRegistry, TenantSnapshot, TenantSpec,
};

/// What one call to [`RoleStep::step`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Work was done; the worker keeps the role until its lease ends.
    Progress,
    /// No work is available right now (the role's source is open but
    /// empty). The worker releases the role and bids elsewhere.
    Idle,
    /// The role can never produce work again (source closed and
    /// drained, or shutdown observed). The executor marks the role
    /// exhausted and calls [`RoleStep::finish`] once the last occupant
    /// leaves.
    Exhausted,
}

/// One pipeline stage runnable by any pool worker.
///
/// A step must be *bounded*: claim one chunk of work, process it, and
/// return. Long blocking waits belong inside the step only when bounded
/// (e.g. a 1 ms starvation wait); unbounded blocking would pin a worker
/// to a role and defeat re-bidding.
pub trait RoleStep: Send + Sync {
    /// Perform one bounded unit of work.
    fn step(&self) -> StepOutcome;

    /// Final flush/close duties; called exactly once after the role is
    /// exhausted and its last occupant has left (see the module docs
    /// for the rare step-after-finish race implementations must
    /// tolerate).
    fn finish(&self) {}
}

/// A role registration: the step body plus its scheduling parameters.
pub struct RoleSpec {
    /// Display name (`"fast"`, `"slow"`, `"batch"`, ...).
    pub name: String,
    /// The step body.
    pub step: Arc<dyn RoleStep>,
    /// Initial budget: how many workers the scheduler wants in this
    /// role. Updated at runtime via [`ExecHandle::set_budget`].
    pub budget: usize,
    /// Dedicated thread count in fixed mode (ignored in elastic mode).
    pub threads: usize,
    /// Hard cap on concurrent occupants (elastic mode), independent of
    /// budget — e.g. a batch role with N assembly lanes caps at N.
    /// `None` = unlimited.
    pub max_concurrency: Option<usize>,
}

/// Executor pool configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Pool size.
    pub threads: usize,
    /// Elastic (role-fluid, work-stealing) vs fixed (static binding).
    pub elastic: bool,
    /// Bounded park when a worker finds no runnable work. Budget
    /// changes, new registrations, and shutdown wake parked workers
    /// immediately; the timeout only bounds the latency of work
    /// arriving through a queue.
    pub idle_wait: Duration,
    /// Steps a worker runs in one lease before re-bidding (the
    /// safe-point cadence). Larger leases amortize bidding overhead;
    /// smaller leases migrate capacity faster.
    pub steps_per_lease: usize,
    /// Workers exit when every registered role has finished (true for
    /// a loader-owned pool; false for a long-lived shared pool that
    /// parks between tenants).
    pub exit_when_drained: bool,
    /// Thread-name prefix (`"{prefix}-{id}"`).
    pub name_prefix: String,
}

impl ExecConfig {
    /// Fixed-mode pool: roles own static thread slices.
    pub fn fixed(threads: usize) -> ExecConfig {
        ExecConfig {
            threads,
            elastic: false,
            idle_wait: Duration::from_millis(1),
            steps_per_lease: 1,
            exit_when_drained: true,
            name_prefix: "minato-exec".into(),
        }
    }

    /// Elastic-mode pool: workers re-bid for roles between leases.
    pub fn elastic(threads: usize) -> ExecConfig {
        ExecConfig {
            elastic: true,
            ..ExecConfig::fixed(threads)
        }
    }
}

/// Stable identifier of a registered role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoleId(u64);

struct RoleState {
    id: RoleId,
    name: String,
    step: Arc<dyn RoleStep>,
    budget: AtomicUsize,
    max_concurrency: usize,
    fixed_threads: usize,
    occupancy: AtomicUsize,
    steps: AtomicU64,
    steals: AtomicU64,
    switches_in: AtomicU64,
    exhausted: AtomicBool,
    finished: AtomicBool,
}

impl RoleState {
    fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    fn snapshot(&self) -> RoleStatsSnapshot {
        RoleStatsSnapshot {
            id: self.id,
            name: self.name.clone(),
            budget: self.budget.load(Ordering::Relaxed),
            occupancy: self.occupancy.load(Ordering::Relaxed),
            steps: self.steps.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            switches_in: self.switches_in.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Acquire),
        }
    }
}

/// Point-in-time view of one role's scheduling state.
#[derive(Debug, Clone)]
pub struct RoleStatsSnapshot {
    /// The role's id.
    pub id: RoleId,
    /// The role's display name.
    pub name: String,
    /// Current budget (scheduler target).
    pub budget: usize,
    /// Workers currently leased to the role.
    pub occupancy: usize,
    /// Total steps that made progress.
    pub steps: u64,
    /// Progressing leases claimed at/over budget (work stolen into the
    /// role).
    pub steals: u64,
    /// Times a worker switched into this role from a different one.
    pub switches_in: u64,
    /// Whether the role can ever produce work again.
    pub exhausted: bool,
}

/// Point-in-time view of the executor.
#[derive(Debug, Clone)]
pub struct ExecStats {
    /// Pool size.
    pub threads: usize,
    /// Whether the pool is role-fluid.
    pub elastic: bool,
    /// Per-role counters.
    pub roles: Vec<RoleStatsSnapshot>,
    /// Total cross-role moves by any worker.
    pub role_switches: u64,
    /// Total progressing leases claimed at/over budget.
    pub steals: u64,
}

impl ExecStats {
    /// The snapshot for the role named `name`, if present.
    pub fn role(&self, name: &str) -> Option<&RoleStatsSnapshot> {
        self.roles.iter().find(|r| r.name == name)
    }
}

struct Shared {
    cfg: ExecConfig,
    roles: Mutex<Vec<Arc<RoleState>>>,
    /// Bumped on register/prune/finish so workers refresh their role
    /// snapshot.
    generation: AtomicU64,
    next_role_id: AtomicU64,
    shutdown: AtomicBool,
    spawned: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    total_switches: AtomicU64,
    total_steals: AtomicU64,
    /// Invoked (outside any lock) each time a worker switches into a
    /// role it was not running; set once, first setter wins.
    switch_observer: OnceLock<Arc<dyn Fn(RoleId) + Send + Sync>>,
    /// Invoked once per pool thread, on that thread, before its first
    /// lease (affinity/TLS setup); set once, first setter wins.
    worker_init: OnceLock<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Release);
    }

    fn park(&self, wait: Duration) {
        let mut g = self.idle_lock.lock();
        // Re-check under the lock: a wake between the caller's check and
        // this wait must not be lost.
        if self.is_shutdown() {
            return;
        }
        self.idle_cv.wait_for(&mut g, wait);
    }

    fn wake_all(&self) {
        let _g = self.idle_lock.lock();
        self.idle_cv.notify_all();
    }

    /// Decrement `role`'s occupancy; the last occupant of an exhausted
    /// role runs `finish` exactly once.
    fn leave_role(&self, role: &RoleState) {
        if role.occupancy.fetch_sub(1, Ordering::AcqRel) == 1
            && role.exhausted.load(Ordering::Acquire)
            && role
                .finished
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            role.step.finish();
            self.bump_generation();
            self.wake_all();
        }
    }

    /// Marks a role exhausted from outside (tenant retirement). If no
    /// worker currently occupies it, `finish` runs inline.
    fn retire_role(&self, role: &RoleState) {
        role.exhausted.store(true, Ordering::Release);
        if role.occupancy.load(Ordering::Acquire) == 0
            && role
                .finished
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            role.step.finish();
            self.bump_generation();
        }
        self.wake_all();
    }
}

/// Cloneable control handle: register roles, adjust budgets, read
/// stats, signal shutdown.
///
/// Create the handle first, hand clones to whatever needs control
/// (runtime state, monitors), then [`ExecHandle::spawn`] the pool once
/// the initial roles are registered.
#[derive(Clone)]
pub struct ExecHandle {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ExecHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecHandle")
            .field("threads", &self.shared.cfg.threads)
            .field("elastic", &self.shared.cfg.elastic)
            .finish()
    }
}

impl ExecHandle {
    /// Creates the control handle for a (not yet spawned) pool.
    pub fn new(cfg: ExecConfig) -> ExecHandle {
        ExecHandle {
            shared: Arc::new(Shared {
                cfg,
                roles: Mutex::new(Vec::new()),
                generation: AtomicU64::new(0),
                next_role_id: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                spawned: AtomicBool::new(false),
                idle_lock: Mutex::new(()),
                idle_cv: Condvar::new(),
                total_switches: AtomicU64::new(0),
                total_steals: AtomicU64::new(0),
                switch_observer: OnceLock::new(),
                worker_init: OnceLock::new(),
            }),
        }
    }

    /// Pool configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.shared.cfg
    }

    /// Registers roles (before or after spawn), pruning roles that
    /// already finished. Returns the new roles' ids in spec order.
    pub fn register(&self, specs: Vec<RoleSpec>) -> Vec<RoleId> {
        let mut roles = self.shared.roles.lock();
        roles.retain(|r| !r.is_finished());
        let ids: Vec<RoleId> = specs
            .into_iter()
            .map(|s| {
                let id = RoleId(self.shared.next_role_id.fetch_add(1, Ordering::Relaxed));
                roles.push(Arc::new(RoleState {
                    id,
                    name: s.name,
                    step: s.step,
                    budget: AtomicUsize::new(s.budget),
                    max_concurrency: s.max_concurrency.unwrap_or(usize::MAX),
                    fixed_threads: s.threads,
                    occupancy: AtomicUsize::new(0),
                    steps: AtomicU64::new(0),
                    steals: AtomicU64::new(0),
                    switches_in: AtomicU64::new(0),
                    exhausted: AtomicBool::new(false),
                    finished: AtomicBool::new(false),
                }));
                id
            })
            .collect();
        drop(roles);
        self.shared.bump_generation();
        self.shared.wake_all();
        ids
    }

    /// Spawns the pool threads. Call once, after registering the
    /// initial roles (fixed mode binds threads to roles at spawn).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn spawn(&self) -> std::io::Result<Executor> {
        assert!(
            !self.shared.spawned.swap(true, Ordering::AcqRel),
            "executor pool already spawned"
        );
        let mut handles = Vec::with_capacity(self.shared.cfg.threads);
        for id in 0..self.shared.cfg.threads {
            let shared = Arc::clone(&self.shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("{}-{id}", self.shared.cfg.name_prefix))
                    .spawn(move || worker_loop(&shared, id))?,
            );
        }
        Ok(Executor {
            shared: Arc::clone(&self.shared),
            handles,
        })
    }

    /// Sets `role`'s budget and wakes parked workers so the change
    /// takes effect within one bid.
    pub fn set_budget(&self, role: RoleId, n: usize) {
        if let Some(r) = self.find(role) {
            r.budget.store(n, Ordering::Release);
        }
        self.shared.wake_all();
    }

    /// Installs a callback invoked each time a worker switches into a
    /// role it was not previously running (elastic mode's cross-role
    /// moves). Called from worker threads outside any executor lock, so
    /// it must be cheap and non-blocking. First setter wins; later
    /// calls are ignored.
    pub fn set_switch_observer(&self, f: Arc<dyn Fn(RoleId) + Send + Sync>) {
        let _ = self.shared.switch_observer.set(f);
    }

    /// Installs a per-thread initialization hook, invoked once on each
    /// pool thread (with its worker id) before it takes its first
    /// lease. The loader uses this to join each worker to its affinity
    /// group and optionally pin it; threads spawned before the hook is
    /// set skip it. First setter wins; later calls are ignored.
    pub fn set_worker_init(&self, f: Arc<dyn Fn(usize) + Send + Sync>) {
        let _ = self.shared.worker_init.set(f);
    }

    /// `role`'s current budget (0 if unknown/pruned).
    pub fn budget(&self, role: RoleId) -> usize {
        self.find(role)
            .map(|r| r.budget.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// Marks the given roles exhausted (tenant retirement / hard stop):
    /// no new leases; `finish` runs once each drains its occupants.
    pub fn retire(&self, ids: &[RoleId]) {
        let roles: Vec<Arc<RoleState>> = self.shared.roles.lock().clone();
        for r in roles.iter().filter(|r| ids.contains(&r.id)) {
            self.shared.retire_role(r);
        }
    }

    /// Retires `ids` and removes them from the role table *immediately*
    /// (tenant detach/eviction), instead of leaving them to be pruned
    /// lazily at the next registration. Workers still holding a
    /// snapshot Arc observe the bumped generation and drop their
    /// references at the next bid; an occupied role's `finish` still
    /// runs exactly once when its last occupant leaves (the snapshot
    /// Arc keeps the state alive until then).
    pub fn reclaim(&self, ids: &[RoleId]) {
        self.retire(ids);
        let mut roles = self.shared.roles.lock();
        roles.retain(|r| !ids.contains(&r.id));
        drop(roles);
        self.shared.bump_generation();
        self.shared.wake_all();
    }

    /// Whether every role in `ids` has finished (pruned roles count as
    /// finished).
    pub fn roles_finished(&self, ids: &[RoleId]) -> bool {
        let roles = self.shared.roles.lock();
        ids.iter().all(|id| {
            roles
                .iter()
                .find(|r| r.id == *id)
                .map(|r| r.is_finished())
                .unwrap_or(true)
        })
    }

    /// Signals full pool shutdown: workers exit at their next safe
    /// point without draining.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
    }

    /// Whether shutdown was signalled.
    pub fn is_shutdown(&self) -> bool {
        self.shared.is_shutdown()
    }

    /// Snapshot of every registered role.
    pub fn stats(&self) -> ExecStats {
        let roles = self.shared.roles.lock();
        ExecStats {
            threads: self.shared.cfg.threads,
            elastic: self.shared.cfg.elastic,
            roles: roles.iter().map(|r| r.snapshot()).collect(),
            role_switches: self.shared.total_switches.load(Ordering::Relaxed),
            steals: self.shared.total_steals.load(Ordering::Relaxed),
        }
    }

    /// Snapshot filtered to `ids` (a tenant's view of a shared pool).
    pub fn stats_for(&self, ids: &[RoleId]) -> ExecStats {
        let mut s = self.stats();
        s.roles.retain(|r| ids.contains(&r.id));
        s
    }

    fn find(&self, id: RoleId) -> Option<Arc<RoleState>> {
        self.shared
            .roles
            .lock()
            .iter()
            .find(|r| r.id == id)
            .cloned()
    }
}

/// Owns the pool threads. [`Executor::join`] (or drop) joins them;
/// workers exit on [`ExecHandle::shutdown`] or, with
/// [`ExecConfig::exit_when_drained`], when every role has finished.
pub struct Executor {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Executor {
    /// A control handle to this pool.
    pub fn handle(&self) -> ExecHandle {
        ExecHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Joins every pool thread (idempotent). Worker panics are
    /// contained: a panicked worker's damage is already recorded by its
    /// role; joining must not propagate into the caller's drop path.
    pub fn join(&mut self) {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Without an explicit shutdown the workers of a non-draining
        // pool would park forever; dropping the owner is that signal.
        if !self.shared.cfg.exit_when_drained {
            self.handle().shutdown();
        }
        self.join();
    }
}

fn worker_loop(shared: &Shared, id: usize) {
    if let Some(init) = shared.worker_init.get() {
        init(id);
    }
    if shared.cfg.elastic {
        elastic_loop(shared, id);
    } else {
        fixed_loop(shared, id);
    }
}

/// Fixed mode: thread `id` is bound to the role owning its slot (spec
/// order, `RoleSpec::threads` wide) and never migrates. A thread whose
/// rank within the role exceeds the budget parks until the budget rises
/// — the classic scaling gate that parks the highest ranks first.
fn fixed_loop(shared: &Shared, id: usize) {
    let snapshot: Vec<Arc<RoleState>> = shared.roles.lock().clone();
    let mut base = 0usize;
    let mut mine = None;
    for r in &snapshot {
        if id < base + r.fixed_threads {
            mine = Some((Arc::clone(r), id - base));
            break;
        }
        base += r.fixed_threads;
    }
    let Some((role, rank)) = mine else {
        return; // Pool larger than the roles' slices: spare thread.
    };
    while !shared.is_shutdown() {
        if role.exhausted.load(Ordering::Acquire) || role.is_finished() {
            break;
        }
        if rank >= role.budget.load(Ordering::Acquire) {
            // Parked by the scheduler; budget raises wake us.
            shared.park(Duration::from_millis(50));
            continue;
        }
        role.occupancy.fetch_add(1, Ordering::AcqRel);
        let out = role.step.step();
        match out {
            StepOutcome::Progress => {
                role.steps.fetch_add(1, Ordering::Relaxed);
            }
            StepOutcome::Idle => {} // The step waited internally.
            StepOutcome::Exhausted => {
                role.exhausted.store(true, Ordering::Release);
            }
        }
        shared.leave_role(&role);
        if out == StepOutcome::Exhausted {
            break;
        }
    }
}

/// Elastic mode: between leases a worker re-bids, preferring the role
/// with the largest budget deficit and stealing into at-budget roles
/// when nothing else has work.
fn elastic_loop(shared: &Shared, _id: usize) {
    let mut snapshot: Vec<Arc<RoleState>> = Vec::new();
    let mut snap_gen = u64::MAX;
    let mut current: Option<RoleId> = None;
    while !shared.is_shutdown() {
        let gen = shared.generation.load(Ordering::Acquire);
        if gen != snap_gen {
            snapshot = shared.roles.lock().clone();
            snap_gen = gen;
        }
        let mut live: Vec<&Arc<RoleState>> = snapshot
            .iter()
            .filter(|r| !r.exhausted.load(Ordering::Acquire) && !r.is_finished())
            .collect();
        if live.is_empty() {
            if shared.cfg.exit_when_drained
                && !snapshot.is_empty()
                && snapshot.iter().all(|r| r.is_finished())
            {
                break;
            }
            current = None;
            shared.park(shared.cfg.idle_wait);
            continue;
        }
        // Largest deficit first; the current role wins ties so a steady
        // worker does not ping-pong between equally-starved roles.
        live.sort_by_key(|r| {
            let deficit = r
                .budget
                .load(Ordering::Relaxed)
                .saturating_sub(r.occupancy.load(Ordering::Relaxed));
            (std::cmp::Reverse(deficit), current != Some(r.id))
        });
        let mut progressed = false;
        for role in live {
            if shared.is_shutdown() {
                break;
            }
            let budget = role.budget.load(Ordering::Acquire);
            let prev_occ = role.occupancy.fetch_add(1, Ordering::AcqRel);
            if prev_occ >= role.max_concurrency {
                // Back off through `leave_role`, not a bare decrement:
                // the real occupant may have marked the role exhausted
                // and already left, which makes this claimer the last
                // occupant — and thus responsible for `finish`.
                shared.leave_role(role);
                continue;
            }
            let stealing = prev_occ >= budget;
            let mut lease_progress = false;
            for _ in 0..shared.cfg.steps_per_lease.max(1) {
                if shared.is_shutdown() {
                    break;
                }
                match role.step.step() {
                    StepOutcome::Progress => {
                        lease_progress = true;
                        role.steps.fetch_add(1, Ordering::Relaxed);
                    }
                    StepOutcome::Idle => break,
                    StepOutcome::Exhausted => {
                        role.exhausted.store(true, Ordering::Release);
                        break;
                    }
                }
            }
            shared.leave_role(role);
            if lease_progress {
                if current != Some(role.id) {
                    role.switches_in.fetch_add(1, Ordering::Relaxed);
                    shared.total_switches.fetch_add(1, Ordering::Relaxed);
                    if let Some(obs) = shared.switch_observer.get() {
                        obs(role.id);
                    }
                }
                if stealing {
                    role.steals.fetch_add(1, Ordering::Relaxed);
                    shared.total_steals.fetch_add(1, Ordering::Relaxed);
                }
                current = Some(role.id);
                progressed = true;
                break;
            }
        }
        if !progressed {
            current = None;
            shared.park(shared.cfg.idle_wait);
        }
    }
}

/// A long-lived elastic pool shared by several loaders (tenants).
///
/// Cloning shares the same pool; the last clone dropped shuts the pool
/// down and joins its threads. Tenants register roles through
/// [`SharedExecutor::handle`] (loader builders do this automatically)
/// and set per-role budgets independently — the pool arbitrates by
/// budget deficit, so a tenant whose stage falls behind pulls workers
/// from tenants with idle budget.
///
/// Every shared pool carries a [`TenantRegistry`]: loaders attach with
/// a declared [`TenantSpec`] (admission-controlled against the pool's
/// [`TenantCapacity`]), own a weighted-fair worker share, and heartbeat
/// a lease the watchdog enforces. [`SharedExecutor::new`] admits
/// everything ([`TenantCapacity::unlimited`]);
/// [`SharedExecutor::with_capacity`] turns the limits on.
#[derive(Clone)]
pub struct SharedExecutor {
    handle: ExecHandle,
    registry: Arc<TenantRegistry>,
    _pool: Arc<Mutex<Option<Executor>>>,
    _watchdog: Arc<WatchdogGuard>,
}

/// Joins the lease-watchdog thread when the last pool clone drops.
struct WatchdogGuard {
    handle: ExecHandle,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        self.handle.shutdown();
        // Drop has exclusive access: no lock needed to take the handle.
        if let Some(t) = self.thread.get_mut().take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for SharedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedExecutor")
            .field("threads", &self.handle.config().threads)
            .finish()
    }
}

impl SharedExecutor {
    /// Spawns a shared elastic pool of `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a worker thread cannot be spawned.
    pub fn new(threads: usize) -> SharedExecutor {
        SharedExecutor::with_capacity(threads, TenantCapacity::unlimited())
    }

    /// Spawns a shared pool whose [`TenantRegistry`] admits tenants
    /// against `capacity`. With a non-zero [`TenantCapacity::lease`], a
    /// watchdog thread reaps tenants that stop heartbeating, reclaiming
    /// their roles and budgets for the co-tenants.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a worker thread cannot be spawned.
    pub fn with_capacity(threads: usize, capacity: TenantCapacity) -> SharedExecutor {
        assert!(threads > 0, "shared pool needs at least one thread");
        let mut cfg = ExecConfig::elastic(threads);
        cfg.exit_when_drained = false;
        cfg.name_prefix = "minato-shared".into();
        let handle = ExecHandle::new(cfg);
        // minato-verify: allow(V1) documented panic contract (`# Panics` above); spawn failure here has no caller to report to
        let pool = handle.spawn().expect("spawn shared pool");
        let registry = Arc::new(TenantRegistry::new(threads, capacity));
        let watchdog = (!capacity.lease.is_zero()).then(|| {
            let wd_handle = handle.clone();
            let wd_registry = Arc::clone(&registry);
            let tick = (capacity.lease / 4).max(Duration::from_millis(1));
            std::thread::Builder::new()
                .name("minato-tenant-watchdog".into())
                .spawn(move || {
                    while !wd_handle.is_shutdown() {
                        std::thread::sleep(tick);
                        wd_registry.reap_expired(&wd_handle);
                    }
                })
                .ok()
        });
        SharedExecutor {
            _watchdog: Arc::new(WatchdogGuard {
                handle: handle.clone(),
                thread: Mutex::new(watchdog.flatten()),
            }),
            handle,
            registry,
            _pool: Arc::new(Mutex::new(Some(pool))),
        }
    }

    /// The pool's control handle.
    pub fn handle(&self) -> &ExecHandle {
        &self.handle
    }

    /// The pool's tenant registry (admission, shares, lease watchdog).
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.registry
    }

    /// Pool size.
    pub fn threads(&self) -> usize {
        self.handle.config().threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A role that counts down `work` steps, then reports exhausted.
    struct CountdownRole {
        left: AtomicUsize,
        done: AtomicUsize,
        finishes: AtomicUsize,
        step_cost: Duration,
    }

    impl CountdownRole {
        fn new(work: usize) -> Arc<CountdownRole> {
            Self::with_cost(work, Duration::ZERO)
        }

        fn with_cost(work: usize, step_cost: Duration) -> Arc<CountdownRole> {
            Arc::new(CountdownRole {
                left: AtomicUsize::new(work),
                done: AtomicUsize::new(0),
                finishes: AtomicUsize::new(0),
                step_cost,
            })
        }
    }

    impl RoleStep for CountdownRole {
        fn step(&self) -> StepOutcome {
            let mut cur = self.left.load(Ordering::Acquire);
            loop {
                if cur == 0 {
                    return StepOutcome::Exhausted;
                }
                match self
                    .left
                    .compare_exchange(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => {
                        if !self.step_cost.is_zero() {
                            std::thread::sleep(self.step_cost);
                        }
                        self.done.fetch_add(1, Ordering::Relaxed);
                        return StepOutcome::Progress;
                    }
                    Err(now) => cur = now,
                }
            }
        }

        fn finish(&self) {
            self.finishes.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn spec(name: &str, step: Arc<dyn RoleStep>, budget: usize, threads: usize) -> RoleSpec {
        RoleSpec {
            name: name.into(),
            step,
            budget,
            threads,
            max_concurrency: None,
        }
    }

    #[test]
    fn fixed_pool_drains_roles_and_exits() {
        let a = CountdownRole::new(100);
        let b = CountdownRole::new(50);
        let h = ExecHandle::new(ExecConfig::fixed(3));
        h.register(vec![spec("a", a.clone(), 2, 2), spec("b", b.clone(), 1, 1)]);
        let mut pool = h.spawn().unwrap();
        pool.join();
        assert_eq!(a.done.load(Ordering::Relaxed), 100);
        assert_eq!(b.done.load(Ordering::Relaxed), 50);
        assert_eq!(a.finishes.load(Ordering::Relaxed), 1, "finish runs once");
        assert_eq!(b.finishes.load(Ordering::Relaxed), 1);
        let stats = h.stats();
        assert!(stats.role("a").unwrap().exhausted);
        assert_eq!(stats.steals, 0, "fixed mode never steals");
    }

    #[test]
    fn fixed_budget_parks_high_ranks() {
        // Budget 0: both "a" threads park; the role makes no progress
        // until the budget rises.
        let a = CountdownRole::new(64);
        let h = ExecHandle::new(ExecConfig::fixed(2));
        let ids = h.register(vec![spec("a", a.clone(), 0, 2)]);
        let mut pool = h.spawn().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(a.done.load(Ordering::Relaxed), 0, "budget 0 must park");
        h.set_budget(ids[0], 2);
        pool.join();
        assert_eq!(a.done.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn elastic_pool_steals_into_busy_role() {
        // Role "big" has far more work than its budget of 1 warrants;
        // the other workers' role drains instantly, so they must steal.
        let big = CountdownRole::with_cost(400, Duration::from_micros(200));
        let small = CountdownRole::new(1);
        let h = ExecHandle::new(ExecConfig::elastic(4));
        h.register(vec![
            spec("small", small.clone(), 3, 0),
            spec("big", big.clone(), 1, 0),
        ]);
        let mut pool = h.spawn().unwrap();
        pool.join();
        assert_eq!(big.done.load(Ordering::Relaxed), 400);
        let stats = h.stats();
        let b = stats.role("big").unwrap();
        assert!(
            b.steals > 0,
            "workers over budget must have stolen into the busy role: {stats:?}"
        );
        assert!(stats.role_switches > 0);
    }

    #[test]
    fn max_concurrency_caps_occupancy() {
        // A role capped at 1 occupant: concurrent steps would double-
        // count; the cap makes `step` effectively single-threaded.
        struct ExclusiveRole {
            inside: AtomicUsize,
            max_seen: AtomicUsize,
            left: AtomicUsize,
        }
        impl RoleStep for ExclusiveRole {
            fn step(&self) -> StepOutcome {
                let now = self.inside.fetch_add(1, Ordering::AcqRel) + 1;
                self.max_seen.fetch_max(now, Ordering::AcqRel);
                std::thread::sleep(Duration::from_micros(200));
                self.inside.fetch_sub(1, Ordering::AcqRel);
                if self
                    .left
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
                    == Err(0)
                {
                    return StepOutcome::Exhausted;
                }
                StepOutcome::Progress
            }
        }
        let role = Arc::new(ExclusiveRole {
            inside: AtomicUsize::new(0),
            max_seen: AtomicUsize::new(0),
            left: AtomicUsize::new(200),
        });
        let h = ExecHandle::new(ExecConfig::elastic(4));
        h.register(vec![RoleSpec {
            name: "exclusive".into(),
            step: role.clone(),
            budget: 4,
            threads: 0,
            max_concurrency: Some(1),
        }]);
        let mut pool = h.spawn().unwrap();
        pool.join();
        assert_eq!(
            role.max_seen.load(Ordering::Relaxed),
            1,
            "cap must keep the role single-occupant"
        );
    }

    #[test]
    fn shutdown_stops_workers_without_draining() {
        let a = CountdownRole::new(usize::MAX); // Endless work.
        let h = ExecHandle::new(ExecConfig::elastic(2));
        h.register(vec![spec("a", a.clone(), 2, 0)]);
        let mut pool = h.spawn().unwrap();
        std::thread::sleep(Duration::from_millis(10));
        h.shutdown();
        pool.join(); // Must return promptly.
        assert!(a.done.load(Ordering::Relaxed) < usize::MAX);
    }

    #[test]
    fn shared_pool_serves_tenants_registered_after_spawn() {
        let shared = SharedExecutor::new(3);
        // No roles yet: workers park. Register a tenant and it drains.
        let a = CountdownRole::new(500);
        let ids = shared
            .handle()
            .register(vec![spec("tenant-a", a.clone(), 3, 0)]);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !shared.handle().roles_finished(&ids) {
            assert!(std::time::Instant::now() < deadline, "tenant never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(a.done.load(Ordering::Relaxed), 500);
        assert_eq!(a.finishes.load(Ordering::Relaxed), 1);
        // A second tenant reuses the same (still live) pool; the first
        // tenant's finished roles are pruned at registration.
        let b = CountdownRole::new(300);
        let ids_b = shared
            .handle()
            .register(vec![spec("tenant-b", b.clone(), 3, 0)]);
        while !shared.handle().roles_finished(&ids_b) {
            assert!(
                std::time::Instant::now() < deadline,
                "tenant b never drained"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(b.done.load(Ordering::Relaxed), 300);
        let stats = shared.handle().stats();
        assert!(
            stats.role("tenant-a").is_none(),
            "finished tenant roles are pruned on the next registration"
        );
        drop(shared); // Joins the pool without hanging.
    }

    /// Drop-mid-epoch reclamation regression: a detached tenant's roles
    /// must leave the role table immediately, not linger until the next
    /// registration prunes them.
    #[test]
    fn reclaim_removes_roles_immediately_without_new_registration() {
        let shared = SharedExecutor::new(2);
        let a = CountdownRole::new(usize::MAX); // Tenant wedged mid-epoch.
        let b = CountdownRole::with_cost(2_000, Duration::from_micros(50));
        let ids_a = shared
            .handle()
            .register(vec![spec("tenant-a", a.clone(), 1, 0)]);
        let ids_b = shared
            .handle()
            .register(vec![spec("tenant-b", b.clone(), 1, 0)]);
        std::thread::sleep(Duration::from_millis(5));
        shared.handle().reclaim(&ids_a);
        // Gone from the table at once — no register() needed first.
        assert!(
            shared.handle().stats().role("tenant-a").is_none(),
            "reclaimed roles must not linger in the role table"
        );
        assert!(shared.handle().roles_finished(&ids_a));
        assert_eq!(shared.handle().budget(ids_a[0]), 0, "budget reclaimed");
        // The finish hook runs when the wedged leaseholder reaches its
        // next safe point — asynchronous, so bounded-wait rather than
        // assert instantly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while a.finishes.load(Ordering::Relaxed) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "finish never ran for the reclaimed role"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(a.finishes.load(Ordering::Relaxed), 1, "finish ran once");
        // The co-tenant keeps draining on the freed capacity.
        while !shared.handle().roles_finished(&ids_b) {
            assert!(std::time::Instant::now() < deadline, "co-tenant stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(b.done.load(Ordering::Relaxed), 2_000);
    }

    #[test]
    fn retire_finishes_an_idle_role_inline() {
        let a = CountdownRole::new(0);
        let h = ExecHandle::new(ExecConfig::elastic(1));
        let mut cfg_pool = {
            let ids = h.register(vec![spec("a", a.clone(), 0, 0)]);
            // Budget 0 and no deficit: the role may never be stepped.
            h.retire(&ids);
            assert!(h.roles_finished(&ids));
            assert_eq!(a.finishes.load(Ordering::Relaxed), 1);
            h.spawn().unwrap()
        };
        cfg_pool.join();
    }

    #[test]
    fn budget_readback_and_unknown_roles() {
        let h = ExecHandle::new(ExecConfig::elastic(1));
        let ids = h.register(vec![spec("a", CountdownRole::new(0), 5, 0)]);
        assert_eq!(h.budget(ids[0]), 5);
        h.set_budget(ids[0], 9);
        assert_eq!(h.budget(ids[0]), 9);
        assert_eq!(h.budget(RoleId(999)), 0);
        assert!(
            h.roles_finished(&[RoleId(999)]),
            "unknown roles count finished"
        );
    }
}
