//! Tenant admission, weighted-fair shares, lease watchdog, and pool
//! placement for multi-tenant [`SharedExecutor`](crate::SharedExecutor)
//! pools.
//!
//! A [`SharedExecutor`](crate::SharedExecutor) runs several loaders'
//! roles on one worker pool. Without admission control every tenant
//! believes it owns the whole pool: role budgets oversubscribe the
//! thread count, and one tenant's slow-heavy phase can outbid a
//! co-tenant's fast role indefinitely. The [`TenantRegistry`] closes
//! that gap:
//!
//! * **Admission** — tenants attach with a declared resource ask
//!   ([`TenantSpec`]: worker count + byte budget) checked against a
//!   configurable [`TenantCapacity`]. An ask that can *never* fit is
//!   [`Admission::Rejected`]; one that does not fit *right now* is
//!   [`Admission::Queued`] (FIFO) and promoted when capacity frees up —
//!   the pool never silently oversubscribes its declared capacity.
//! * **Weighted-fair isolation** — each admitted tenant owns a worker
//!   *share* (largest-remainder split of the pool's threads by declared
//!   weight). The loader's scheduler clamps its Formula-1 limit to the
//!   share ([`TenantRegistry::clamp_limit`]), so the sum of all
//!   tenants' role budgets never exceeds the pool and a co-tenant's
//!   fast role keeps its weighted floor ([`TenantRegistry::fast_floor`])
//!   no matter how slow-heavy its neighbours turn — the starvation fix
//!   at tenant granularity.
//! * **Churn-tolerant degradation** — tenants heartbeat their lease
//!   ([`TenantRegistry::heartbeat`]); a wedged or crashed tenant is
//!   detected by the watchdog ([`TenantRegistry::reap_expired`]), its
//!   roles retired and reclaimed from the pool immediately, and its
//!   capacity returned so queued tenants admit — all without stalling
//!   co-tenants.
//! * **Placement** — [`PoolPlacer`] assigns tenants across several
//!   pools' registries under a [`PlacementPolicy`] (BestFit / MinPools
//!   / Random).
//!
//! Every transition is counted ([`TenantCounters`]) and logged as a
//! [`TenantEvent`] for the loader's monitor to surface as trace events.

use crate::{ExecHandle, RoleId};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Stable identifier of a tenant within one registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u64);

impl TenantId {
    /// The raw index (stable, monotonically assigned) — used as the
    /// `arg` of tenant-scoped trace events.
    pub fn index(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A tenant's declared identity and resource ask.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (surfaced in snapshots and traces).
    pub name: String,
    /// Weighted-fair share weight (≥ 1; clamped up from 0).
    pub weight: u32,
    /// Declared worker-count ask, checked against
    /// [`TenantCapacity::max_workers`].
    pub workers: usize,
    /// Declared pool/cache byte ask, checked against
    /// [`TenantCapacity::max_bytes`].
    pub bytes: u64,
}

impl TenantSpec {
    /// A minimal spec: weight 1, zero resource ask.
    pub fn new(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            weight: 1,
            workers: 0,
            bytes: 0,
        }
    }

    /// Sets the fair-share weight.
    pub fn with_weight(mut self, weight: u32) -> TenantSpec {
        self.weight = weight;
        self
    }

    /// Sets the declared worker ask.
    pub fn with_workers(mut self, workers: usize) -> TenantSpec {
        self.workers = workers;
        self
    }

    /// Sets the declared byte ask.
    pub fn with_bytes(mut self, bytes: u64) -> TenantSpec {
        self.bytes = bytes;
        self
    }
}

/// Capacity limits one registry admits tenants against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantCapacity {
    /// Maximum concurrently admitted tenants.
    pub max_tenants: usize,
    /// Total declared worker ask the pool accepts.
    pub max_workers: usize,
    /// Total declared byte ask the pool accepts.
    pub max_bytes: u64,
    /// Heartbeat lease: a tenant whose last heartbeat is older than
    /// this is considered wedged and evicted by the watchdog.
    /// `Duration::ZERO` disables lease expiry.
    pub lease: Duration,
}

impl TenantCapacity {
    /// No limits and no lease — the behaviour of a pre-admission shared
    /// pool. [`crate::SharedExecutor::new`] uses this.
    pub fn unlimited() -> TenantCapacity {
        TenantCapacity {
            max_tenants: usize::MAX,
            max_workers: usize::MAX,
            max_bytes: u64::MAX,
            lease: Duration::ZERO,
        }
    }
}

impl Default for TenantCapacity {
    fn default() -> TenantCapacity {
        TenantCapacity::unlimited()
    }
}

/// Outcome of [`TenantRegistry::attach`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The tenant holds its ask; it may register roles and run.
    Admitted(TenantId),
    /// The ask fits the capacity but not the current load; the tenant
    /// waits FIFO and is promoted when capacity frees
    /// ([`TenantRegistry::is_admitted`] flips to `true`).
    Queued(TenantId),
    /// The ask exceeds the pool's total capacity and can never fit.
    Rejected,
}

impl Admission {
    /// The assigned id, unless rejected.
    pub fn id(&self) -> Option<TenantId> {
        match self {
            Admission::Admitted(id) | Admission::Queued(id) => Some(*id),
            Admission::Rejected => None,
        }
    }
}

/// What happened to a tenant — drained by the loader's monitor and
/// re-emitted as `TenantAdmit` / `TenantEvict` / `BudgetReclaim` trace
/// events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantEvent {
    /// The tenant was admitted (directly or promoted from the queue).
    Admit(TenantId),
    /// The tenant was evicted by the lease watchdog.
    Evict(TenantId),
    /// The tenant's budgets and roles were reclaimed (detach or
    /// eviction).
    BudgetReclaim(TenantId),
}

/// Registry-wide admission/lifecycle counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Tenants admitted (including queue promotions).
    pub admitted: u64,
    /// Tenants rejected outright (ask exceeds total capacity).
    pub rejected: u64,
    /// Tenants that had to wait in the admission queue.
    pub queued: u64,
    /// Tenants evicted by the lease watchdog.
    pub evicted: u64,
    /// Budget reclamations (detach + eviction).
    pub reclaimed: u64,
    /// Monitor ticks that observed a tenant's fast occupancy below its
    /// weighted floor while it wanted at least the floor.
    pub floor_violations: u64,
    /// Currently admitted tenants.
    pub active: usize,
    /// Tenants currently waiting in the admission queue.
    pub waiting: usize,
}

/// Point-in-time view of one admitted tenant.
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    /// The tenant's id.
    pub id: TenantId,
    /// Declared name.
    pub name: String,
    /// Declared weight.
    pub weight: u32,
    /// Declared worker ask.
    pub workers: usize,
    /// Declared byte ask.
    pub bytes: u64,
    /// Weighted-fair worker share of the pool.
    pub share: usize,
    /// Roles currently bound to the tenant.
    pub roles: usize,
}

struct Active {
    id: TenantId,
    spec: TenantSpec,
    roles: Vec<RoleId>,
    share: usize,
    last_beat: Instant,
}

struct Waiting {
    id: TenantId,
    spec: TenantSpec,
}

struct Inner {
    next_id: u64,
    active: Vec<Active>,
    waiting: VecDeque<Waiting>,
    events: Vec<TenantEvent>,
}

/// Bound on undrained tenant events; beyond it the oldest are dropped
/// (the monitor drains every tick, so this only guards a tracer-less
/// registry).
const EVENT_CAP: usize = 1024;

/// Admission control, weighted-fair shares, and the lease watchdog for
/// one shared pool. See the [module docs](self).
pub struct TenantRegistry {
    threads: usize,
    capacity: TenantCapacity,
    inner: Mutex<Inner>,
    admitted: AtomicU64,
    rejected: AtomicU64,
    queued: AtomicU64,
    evicted: AtomicU64,
    reclaimed: AtomicU64,
    floor_violations: AtomicU64,
}

impl std::fmt::Debug for TenantRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantRegistry")
            .field("threads", &self.threads)
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl TenantRegistry {
    /// Creates a registry for a pool of `threads` workers under
    /// `capacity`.
    pub fn new(threads: usize, capacity: TenantCapacity) -> TenantRegistry {
        TenantRegistry {
            threads: threads.max(1),
            capacity,
            inner: Mutex::new(Inner {
                next_id: 0,
                active: Vec::new(),
                waiting: VecDeque::new(),
                events: Vec::new(),
            }),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            floor_violations: AtomicU64::new(0),
        }
    }

    /// The capacity this registry admits against.
    pub fn capacity(&self) -> &TenantCapacity {
        &self.capacity
    }

    /// Pool size the weighted shares split.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Declared worker ask still unclaimed by admitted tenants.
    pub fn free_workers(&self) -> usize {
        let inner = self.inner.lock();
        self.capacity
            .max_workers
            .saturating_sub(inner.active.iter().map(|a| a.spec.workers).sum())
    }

    /// Declared byte ask still unclaimed by admitted tenants.
    pub fn free_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        self.capacity
            .max_bytes
            .saturating_sub(inner.active.iter().map(|a| a.spec.bytes).sum())
    }

    /// Currently admitted tenant count.
    pub fn active_tenants(&self) -> usize {
        self.inner.lock().active.len()
    }

    /// Whether `spec` would be admitted right now (placement probe; does
    /// not change state).
    pub fn would_admit(&self, spec: &TenantSpec) -> bool {
        let inner = self.inner.lock();
        Self::fits(&self.capacity, &inner.active, spec)
    }

    fn fits(cap: &TenantCapacity, active: &[Active], spec: &TenantSpec) -> bool {
        let used_workers: usize = active.iter().map(|a| a.spec.workers).sum();
        let used_bytes: u64 = active.iter().map(|a| a.spec.bytes).sum();
        active.len() < cap.max_tenants
            && used_workers.saturating_add(spec.workers) <= cap.max_workers
            && used_bytes.saturating_add(spec.bytes) <= cap.max_bytes
    }

    fn push_event(inner: &mut Inner, ev: TenantEvent) {
        if inner.events.len() >= EVENT_CAP {
            inner.events.remove(0);
        }
        inner.events.push(ev);
    }

    /// Largest-remainder split of the pool's threads by weight, in
    /// admission order; every tenant keeps a share of at least 1.
    fn recompute_shares(threads: usize, active: &mut [Active]) {
        let total_w: u64 = active.iter().map(|a| u64::from(a.spec.weight.max(1))).sum();
        if total_w == 0 {
            return;
        }
        let mut assigned = 0usize;
        for a in active.iter_mut() {
            a.share = ((threads as u64 * u64::from(a.spec.weight.max(1))) / total_w) as usize;
            assigned += a.share;
        }
        let mut leftover = threads.saturating_sub(assigned);
        for a in active.iter_mut() {
            if leftover == 0 {
                break;
            }
            a.share += 1;
            leftover -= 1;
        }
        for a in active.iter_mut() {
            a.share = a.share.max(1);
        }
    }

    /// Attaches a tenant: admitted if its ask fits the current load,
    /// queued (FIFO) if it fits the capacity but not the load, rejected
    /// if it can never fit.
    pub fn attach(&self, spec: TenantSpec) -> Admission {
        if spec.workers > self.capacity.max_workers || spec.bytes > self.capacity.max_bytes {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Admission::Rejected;
        }
        let mut inner = self.inner.lock();
        let id = TenantId(inner.next_id);
        inner.next_id += 1;
        // A FIFO queue stays a queue: fresh arrivals may not overtake
        // tenants already waiting, even when they would fit.
        if inner.waiting.is_empty() && Self::fits(&self.capacity, &inner.active, &spec) {
            inner.active.push(Active {
                id,
                spec,
                roles: Vec::new(),
                share: 0,
                last_beat: Instant::now(),
            });
            Self::recompute_shares(self.threads, &mut inner.active);
            Self::push_event(&mut inner, TenantEvent::Admit(id));
            self.admitted.fetch_add(1, Ordering::Relaxed);
            Admission::Admitted(id)
        } else {
            inner.waiting.push_back(Waiting { id, spec });
            self.queued.fetch_add(1, Ordering::Relaxed);
            Admission::Queued(id)
        }
    }

    /// Binds the roles a tenant registered on the pool, so eviction and
    /// detach can retire and reclaim them. Returns `false` for unknown
    /// (or not-yet-admitted) tenants.
    pub fn bind_roles(&self, id: TenantId, roles: Vec<RoleId>) -> bool {
        let mut inner = self.inner.lock();
        match inner.active.iter_mut().find(|a| a.id == id) {
            Some(a) => {
                a.roles = roles;
                true
            }
            None => false,
        }
    }

    /// Renews a tenant's lease. Call at least once per lease interval
    /// (the loader's monitor heartbeats every tick).
    pub fn heartbeat(&self, id: TenantId) {
        let mut inner = self.inner.lock();
        if let Some(a) = inner.active.iter_mut().find(|a| a.id == id) {
            a.last_beat = Instant::now();
        }
    }

    /// Whether `id` is currently admitted (queued tenants flip to
    /// `true` once promoted).
    pub fn is_admitted(&self, id: TenantId) -> bool {
        self.inner.lock().active.iter().any(|a| a.id == id)
    }

    /// The tenant's weighted-fair worker share (0 if not admitted).
    pub fn share(&self, id: TenantId) -> usize {
        self.inner
            .lock()
            .active
            .iter()
            .find(|a| a.id == id)
            .map(|a| a.share)
            .unwrap_or(0)
    }

    /// Clamps a tenant's scheduler limit to its weighted share — the
    /// isolation mechanism: with every tenant's role budgets summing to
    /// at most its share, total demand never exceeds the pool, so no
    /// tenant's slow-heavy phase can outbid a co-tenant's floor.
    pub fn clamp_limit(&self, id: TenantId, limit: usize) -> usize {
        match self.share(id) {
            0 => limit,
            share => limit.min(share),
        }
    }

    /// The fast-role occupancy floor the tenant's weighted share
    /// guarantees: its share minus one slow and one batch worker, never
    /// below 1.
    pub fn fast_floor(&self, id: TenantId) -> usize {
        self.share(id).saturating_sub(2).max(1)
    }

    /// Records one monitor observation of a tenant's fast-role
    /// occupancy. Counts a floor violation when the tenant wanted at
    /// least its floor (`fast_budget >= floor`) but occupancy sampled
    /// below it.
    pub fn observe_fast_occupancy(&self, id: TenantId, occupancy: usize, fast_budget: usize) {
        let floor = self.fast_floor(id);
        if self.is_admitted(id) && fast_budget >= floor && occupancy < floor {
            self.floor_violations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Detaches a tenant (graceful departure or abandonment of a queued
    /// slot): returns its capacity, logs a `BudgetReclaim`, and
    /// promotes waiting tenants that now fit (FIFO). Idempotent.
    /// Returns `true` if the tenant was present.
    pub fn detach(&self, id: TenantId) -> bool {
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.active.iter().position(|a| a.id == id) {
            inner.active.remove(pos);
            Self::recompute_shares(self.threads, &mut inner.active);
            Self::push_event(&mut inner, TenantEvent::BudgetReclaim(id));
            self.reclaimed.fetch_add(1, Ordering::Relaxed);
            self.promote_locked(&mut inner);
            true
        } else if let Some(pos) = inner.waiting.iter().position(|w| w.id == id) {
            inner.waiting.remove(pos);
            true
        } else {
            false
        }
    }

    /// Promotes waiting tenants from the queue head while they fit.
    fn promote_locked(&self, inner: &mut Inner) {
        while let Some(head) = inner.waiting.front() {
            if !Self::fits(&self.capacity, &inner.active, &head.spec) {
                break;
            }
            if let Some(w) = inner.waiting.pop_front() {
                let id = w.id;
                inner.active.push(Active {
                    id,
                    spec: w.spec,
                    roles: Vec::new(),
                    share: 0,
                    last_beat: Instant::now(),
                });
                Self::recompute_shares(self.threads, &mut inner.active);
                Self::push_event(inner, TenantEvent::Admit(id));
                self.admitted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Evicts every tenant whose lease expired, retiring and reclaiming
    /// its roles from `handle` immediately so co-tenants repartition
    /// the pool within one refresh. Returns the evicted ids. No-op when
    /// the capacity has no lease.
    pub fn reap_expired(&self, handle: &ExecHandle) -> Vec<TenantId> {
        if self.capacity.lease.is_zero() {
            return Vec::new();
        }
        let now = Instant::now();
        let mut reaped: Vec<(TenantId, Vec<RoleId>)> = Vec::new();
        {
            let mut inner = self.inner.lock();
            let lease = self.capacity.lease;
            let mut i = 0;
            while i < inner.active.len() {
                if now.duration_since(inner.active[i].last_beat) > lease {
                    let a = inner.active.remove(i);
                    reaped.push((a.id, a.roles));
                } else {
                    i += 1;
                }
            }
            if !reaped.is_empty() {
                Self::recompute_shares(self.threads, &mut inner.active);
                for (id, _) in &reaped {
                    Self::push_event(&mut inner, TenantEvent::Evict(*id));
                    Self::push_event(&mut inner, TenantEvent::BudgetReclaim(*id));
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                    self.reclaimed.fetch_add(1, Ordering::Relaxed);
                }
                self.promote_locked(&mut inner);
            }
        }
        // Outside the registry lock: role reclamation takes the pool's
        // role-table lock.
        let mut ids = Vec::with_capacity(reaped.len());
        for (id, roles) in reaped {
            if !roles.is_empty() {
                handle.reclaim(&roles);
            }
            ids.push(id);
        }
        ids
    }

    /// Drains the pending lifecycle events (oldest first).
    pub fn take_events(&self) -> Vec<TenantEvent> {
        std::mem::take(&mut self.inner.lock().events)
    }

    /// Registry-wide counter snapshot.
    pub fn counters(&self) -> TenantCounters {
        let inner = self.inner.lock();
        TenantCounters {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            floor_violations: self.floor_violations.load(Ordering::Relaxed),
            active: inner.active.len(),
            waiting: inner.waiting.len(),
        }
    }

    /// Snapshot of every admitted tenant.
    pub fn tenants(&self) -> Vec<TenantSnapshot> {
        self.inner
            .lock()
            .active
            .iter()
            .map(|a| TenantSnapshot {
                id: a.id,
                name: a.spec.name.clone(),
                weight: a.spec.weight,
                workers: a.spec.workers,
                bytes: a.spec.bytes,
                share: a.share,
                roles: a.roles.len(),
            })
            .collect()
    }
}

/// Tenant-to-pool assignment policy for [`PoolPlacer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Tightest fit: the admitting pool with the least free worker
    /// capacity left after placement (consolidates load, preserves big
    /// holes for big tenants).
    BestFit,
    /// Fewest pools: the first admitting pool in declaration order
    /// (packs tenants onto as few pools as possible).
    MinPools,
    /// Seeded uniform choice among admitting pools (spreads load,
    /// baseline arm for placement ablations).
    Random,
}

impl PlacementPolicy {
    /// Every policy, for sweep harnesses.
    pub fn all() -> [PlacementPolicy; 3] {
        [
            PlacementPolicy::BestFit,
            PlacementPolicy::MinPools,
            PlacementPolicy::Random,
        ]
    }

    /// Parses a policy name (`best_fit` / `min_pools` / `random`).
    pub fn parse(s: &str) -> Option<PlacementPolicy> {
        match s {
            "best_fit" => Some(PlacementPolicy::BestFit),
            "min_pools" => Some(PlacementPolicy::MinPools),
            "random" => Some(PlacementPolicy::Random),
            _ => None,
        }
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlacementPolicy::BestFit => "best_fit",
            PlacementPolicy::MinPools => "min_pools",
            PlacementPolicy::Random => "random",
        })
    }
}

/// Assigns tenants across several pools' registries under a
/// [`PlacementPolicy`]. Deterministic: the `Random` policy draws from a
/// seeded xorshift stream.
#[derive(Debug)]
pub struct PoolPlacer {
    policy: PlacementPolicy,
    rng: Mutex<u64>,
}

impl PoolPlacer {
    /// Creates a placer. `seed` drives the `Random` policy only.
    pub fn new(policy: PlacementPolicy, seed: u64) -> PoolPlacer {
        PoolPlacer {
            policy,
            // Xorshift must not start at 0; splash the seed.
            rng: Mutex::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    fn next_rand(&self) -> u64 {
        let mut s = self.rng.lock();
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        x
    }

    /// Picks the pool (index into `pools`) that should admit `spec`,
    /// or `None` when no pool admits it right now.
    pub fn place(&self, pools: &[&TenantRegistry], spec: &TenantSpec) -> Option<usize> {
        let fitting: Vec<usize> = pools
            .iter()
            .enumerate()
            .filter(|(_, p)| p.would_admit(spec))
            .map(|(i, _)| i)
            .collect();
        if fitting.is_empty() {
            return None;
        }
        match self.policy {
            PlacementPolicy::MinPools => fitting.first().copied(),
            PlacementPolicy::BestFit => fitting
                .iter()
                .copied()
                .min_by_key(|&i| pools[i].free_workers().saturating_sub(spec.workers)),
            PlacementPolicy::Random => {
                let pick = (self.next_rand() % fitting.len() as u64) as usize;
                fitting.get(pick).copied()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(tenants: usize, workers: usize, bytes: u64) -> TenantCapacity {
        TenantCapacity {
            max_tenants: tenants,
            max_workers: workers,
            max_bytes: bytes,
            lease: Duration::ZERO,
        }
    }

    fn ask(name: &str, workers: usize, bytes: u64) -> TenantSpec {
        TenantSpec::new(name)
            .with_workers(workers)
            .with_bytes(bytes)
    }

    #[test]
    fn admits_within_capacity_and_queues_past_it() {
        let reg = TenantRegistry::new(8, cap(8, 8, 1_000));
        let a = reg.attach(ask("a", 4, 100));
        let b = reg.attach(ask("b", 4, 100));
        assert!(matches!(a, Admission::Admitted(_)));
        assert!(matches!(b, Admission::Admitted(_)));
        // Worker capacity exhausted: c queues instead of oversubscribing.
        let c = reg.attach(ask("c", 1, 0));
        let c_id = match c {
            Admission::Queued(id) => id,
            other => panic!("expected queued, got {other:?}"),
        };
        assert!(!reg.is_admitted(c_id));
        let counters = reg.counters();
        assert_eq!(counters.admitted, 2);
        assert_eq!(counters.queued, 1);
        assert_eq!(counters.active, 2);
        assert_eq!(counters.waiting, 1);
        // a departs: c is promoted FIFO.
        let a_id = a.id().expect("admitted");
        assert!(reg.detach(a_id));
        assert!(reg.is_admitted(c_id));
        assert_eq!(reg.counters().admitted, 3);
        assert_eq!(reg.counters().reclaimed, 1);
    }

    #[test]
    fn rejects_asks_that_can_never_fit() {
        let reg = TenantRegistry::new(4, cap(4, 8, 100));
        assert_eq!(reg.attach(ask("huge", 9, 0)), Admission::Rejected);
        assert_eq!(reg.attach(ask("fat", 0, 101)), Admission::Rejected);
        assert_eq!(reg.counters().rejected, 2);
        assert_eq!(reg.counters().active, 0);
    }

    #[test]
    fn fifo_queue_admits_in_arrival_order() {
        let reg = TenantRegistry::new(4, cap(1, 8, 1_000));
        let a = reg.attach(ask("a", 1, 0)).id().expect("admitted");
        let b = reg.attach(ask("b", 1, 0)).id().expect("queued id");
        // c would fit by resources but may not overtake b in the queue.
        let c = reg.attach(ask("c", 0, 0)).id().expect("queued id");
        assert!(!reg.is_admitted(b) && !reg.is_admitted(c));
        reg.detach(a);
        assert!(reg.is_admitted(b), "head of the queue promotes first");
        assert!(!reg.is_admitted(c), "max_tenants 1 keeps c waiting");
    }

    #[test]
    fn shares_split_threads_by_weight() {
        let reg = TenantRegistry::new(8, TenantCapacity::unlimited());
        let a = reg
            .attach(TenantSpec::new("a").with_weight(3))
            .id()
            .expect("a");
        let b = reg
            .attach(TenantSpec::new("b").with_weight(1))
            .id()
            .expect("b");
        assert_eq!(reg.share(a), 6);
        assert_eq!(reg.share(b), 2);
        assert_eq!(reg.clamp_limit(a, 8), 6);
        assert_eq!(reg.clamp_limit(b, 8), 2);
        assert_eq!(reg.fast_floor(a), 4);
        assert_eq!(reg.fast_floor(b), 1, "share 2 still floors at 1");
        // Shares recompute on departure: the survivor owns the pool.
        reg.detach(b);
        assert_eq!(reg.share(a), 8);
        // Unknown tenants are never clamped.
        assert_eq!(reg.clamp_limit(b, 5), 5);
    }

    #[test]
    fn lease_watchdog_evicts_silent_tenants_and_promotes_waiters() {
        let reg = TenantRegistry::new(
            4,
            TenantCapacity {
                max_tenants: 1,
                lease: Duration::from_millis(20),
                ..TenantCapacity::unlimited()
            },
        );
        let h = ExecHandle::new(crate::ExecConfig::elastic(1));
        let wedged = reg
            .attach(TenantSpec::new("wedged"))
            .id()
            .expect("admitted");
        let waiter = reg.attach(TenantSpec::new("waiter")).id().expect("queued");
        let ids = h.register(vec![crate::RoleSpec {
            name: "wedged-fast".into(),
            step: std::sync::Arc::new(NoopRole),
            budget: 1,
            threads: 0,
            max_concurrency: None,
        }]);
        assert!(reg.bind_roles(wedged, ids.clone()));
        // A live heartbeat keeps the tenant.
        reg.heartbeat(wedged);
        assert!(reg.reap_expired(&h).is_empty());
        // Silence past the lease: evicted, roles reclaimed from the
        // pool immediately, waiter promoted.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(reg.reap_expired(&h), vec![wedged]);
        assert!(!reg.is_admitted(wedged));
        assert!(reg.is_admitted(waiter));
        assert!(h.stats().roles.is_empty(), "roles reclaimed at eviction");
        assert!(h.roles_finished(&ids));
        let c = reg.counters();
        assert_eq!((c.evicted, c.reclaimed), (1, 1));
        let evs = reg.take_events();
        assert!(evs.contains(&TenantEvent::Evict(wedged)));
        assert!(evs.contains(&TenantEvent::BudgetReclaim(wedged)));
        assert!(evs.contains(&TenantEvent::Admit(waiter)));
        assert!(reg.take_events().is_empty(), "events drain once");
    }

    struct NoopRole;
    impl crate::RoleStep for NoopRole {
        fn step(&self) -> crate::StepOutcome {
            crate::StepOutcome::Idle
        }
    }

    #[test]
    fn floor_violations_count_only_underfloor_with_demand() {
        let reg = TenantRegistry::new(8, TenantCapacity::unlimited());
        let a = reg.attach(TenantSpec::new("a")).id().expect("a");
        let _b = reg.attach(TenantSpec::new("b")).id().expect("b");
        let floor = reg.fast_floor(a);
        assert_eq!(floor, 2, "share 4 − slow − batch");
        reg.observe_fast_occupancy(a, floor, floor + 1); // at floor: fine
        reg.observe_fast_occupancy(a, floor - 1, 0); // no demand: fine
        assert_eq!(reg.counters().floor_violations, 0);
        reg.observe_fast_occupancy(a, floor - 1, floor); // starved
        assert_eq!(reg.counters().floor_violations, 1);
    }

    #[test]
    fn placement_policies_pick_distinct_pools() {
        let full = TenantRegistry::new(4, cap(8, 2, 1_000));
        let roomy = TenantRegistry::new(4, cap(8, 10, 1_000));
        let snug = TenantRegistry::new(4, cap(8, 5, 1_000));
        full.attach(ask("pre", 2, 0));
        let pools = [&full, &roomy, &snug];
        let spec = ask("new", 4, 0);
        // MinPools: first fitting pool (full cannot fit).
        let min_pools = PoolPlacer::new(PlacementPolicy::MinPools, 1);
        assert_eq!(min_pools.place(&pools, &spec), Some(1));
        // BestFit: tightest residual — snug (5−4=1) beats roomy (10−4=6).
        let best_fit = PoolPlacer::new(PlacementPolicy::BestFit, 1);
        assert_eq!(best_fit.place(&pools, &spec), Some(2));
        // Random: seeded and in-range; same seed, same stream.
        let r1 = PoolPlacer::new(PlacementPolicy::Random, 42);
        let r2 = PoolPlacer::new(PlacementPolicy::Random, 42);
        let picks: Vec<_> = (0..8).map(|_| r1.place(&pools, &spec)).collect();
        let picks2: Vec<_> = (0..8).map(|_| r2.place(&pools, &spec)).collect();
        assert_eq!(picks, picks2);
        assert!(picks.iter().all(|p| matches!(p, Some(1) | Some(2))));
        // No pool fits: no placement.
        let whale = ask("whale", 100, 0);
        assert_eq!(min_pools.place(&pools, &whale), None);
    }
}
