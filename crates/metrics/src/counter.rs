//! Lock-free counters shared between loader workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing, thread-safe counter.
///
/// Used for queue put/pop totals, bytes loaded, samples classified slow,
/// etc. All operations are relaxed: counters feed monitoring, not
/// synchronization.
///
/// # Examples
///
/// ```
/// use minato_metrics::Counter;
///
/// let c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// Converts a byte count and an elapsed duration into MB/s, the unit of the
/// paper's throughput plots (Figure 7).
///
/// Returns 0.0 for a zero-length interval.
pub fn mb_per_sec(bytes: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 / 1e6 / secs
}

/// Windowed rate meter: converts counter deltas into per-second rates.
///
/// The worker scheduler samples queue/throughput rates on a fixed monitor
/// interval; this type owns the previous snapshot so each `tick` yields the
/// rate over the window just ended.
#[derive(Debug)]
pub struct RateMeter {
    last_value: u64,
}

impl Default for RateMeter {
    fn default() -> Self {
        RateMeter::new()
    }
}

impl RateMeter {
    /// Creates a meter with an empty previous snapshot.
    pub fn new() -> RateMeter {
        RateMeter { last_value: 0 }
    }

    /// Records a new cumulative `value` observed `window` after the previous
    /// tick and returns the average rate (units/second) over that window.
    ///
    /// A counter reset (value going backwards) is treated as a restart and
    /// yields the rate of the new value alone.
    pub fn tick(&mut self, value: u64, window: Duration) -> f64 {
        let delta = value.saturating_sub(self.last_value);
        self.last_value = value;
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            delta as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread panicked");
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn take_resets() {
        let c = Counter::new();
        c.add(5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn mb_per_sec_basic() {
        assert_eq!(mb_per_sec(10_000_000, Duration::from_secs(2)), 5.0);
        assert_eq!(mb_per_sec(1, Duration::ZERO), 0.0);
    }

    #[test]
    fn rate_meter_computes_window_delta() {
        let mut m = RateMeter::new();
        assert_eq!(m.tick(100, Duration::from_secs(1)), 100.0);
        assert_eq!(m.tick(300, Duration::from_secs(2)), 100.0);
    }

    #[test]
    fn rate_meter_handles_reset() {
        let mut m = RateMeter::new();
        m.tick(100, Duration::from_secs(1));
        // Counter restarted at 10: delta saturates to 0... then new base.
        assert_eq!(m.tick(10, Duration::from_secs(1)), 0.0);
        assert_eq!(m.tick(20, Duration::from_secs(1)), 10.0);
    }
}
