//! Moving averages used by the adaptive worker scheduler.
//!
//! Paper Formula 2 drives worker scaling from "the moving average of the
//! queue size" and "the average CPU utilization". [`MovingAverage`] is the
//! fixed-window variant; [`Ewma`] is the exponentially weighted variant used
//! where a window length is awkward (e.g., irregular monitor intervals).

use std::collections::VecDeque;

/// Exponentially weighted moving average.
///
/// # Examples
///
/// ```
/// use minato_metrics::Ewma;
///
/// let mut e = Ewma::new(0.5);
/// e.record(10.0);
/// e.record(0.0);
/// assert_eq!(e.value(), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Folds one observation into the average.
    pub fn record(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current average; 0.0 before any observation.
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Whether at least one observation was recorded.
    pub fn is_primed(&self) -> bool {
        self.value.is_some()
    }
}

/// Fixed-window moving average over the last `window` observations.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl MovingAverage {
    /// Creates a moving average over the most recent `window` observations.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> MovingAverage {
        assert!(window > 0, "window must be positive");
        MovingAverage {
            window,
            buf: VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }

    /// Folds one observation in, evicting the oldest when full.
    pub fn record(&mut self, x: f64) {
        if self.buf.len() == self.window {
            if let Some(old) = self.buf.pop_front() {
                self.sum -= old;
            }
        }
        self.buf.push_back(x);
        self.sum += x;
    }

    /// Current average; 0.0 before any observation.
    pub fn value(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    /// Number of observations currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no observation was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn ewma_first_value_unsmoothed() {
        let mut e = Ewma::new(0.1);
        assert!(!e.is_primed());
        e.record(42.0);
        assert_eq!(e.value(), 42.0);
        assert!(e.is_primed());
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        for _ in 0..200 {
            e.record(7.0);
        }
        assert!((e.value() - 7.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn moving_average_rejects_zero_window() {
        let _ = MovingAverage::new(0);
    }

    #[test]
    fn moving_average_partial_window() {
        let mut m = MovingAverage::new(4);
        m.record(2.0);
        m.record(4.0);
        assert_eq!(m.value(), 3.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn moving_average_evicts_oldest() {
        let mut m = MovingAverage::new(2);
        m.record(1.0);
        m.record(3.0);
        m.record(5.0); // Evicts 1.0 -> window [3, 5].
        assert_eq!(m.value(), 4.0);
    }

    #[test]
    fn moving_average_empty_is_zero() {
        assert_eq!(MovingAverage::new(3).value(), 0.0);
    }
}
