//! Fixed-bucket histograms.
//!
//! Figure 11b of the paper plots "distribution of batches by the number of
//! slow samples they contain" — a small integer histogram normalized to
//! probabilities. [`Histogram`] covers that and the coarser latency
//! distributions used in tests.

/// Histogram over `[lo, hi)` with uniformly sized buckets plus overflow /
/// underflow buckets.
///
/// # Examples
///
/// ```
/// use minato_metrics::Histogram;
///
/// // Integer-count histogram for 0..=4 slow samples per batch.
/// let mut h = Histogram::new(0.0, 5.0, 5);
/// h.record(0.0);
/// h.record(0.0);
/// h.record(2.0);
/// assert_eq!(h.count(), 3);
/// let probs = h.probabilities();
/// assert!((probs[0] - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` uniform buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `hi <= lo` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(hi > lo, "hi must exceed lo");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    ///
    /// Non-finite values are counted as overflow (they are anomalies worth
    /// surfacing, not silently dropping).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            self.overflow += 1;
            return;
        }
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Raw in-range bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi` (plus non-finite ones).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// In-range bucket probabilities (fractions of *all* observations).
    ///
    /// Returns all-zero buckets when nothing was recorded.
    pub fn probabilities(&self) -> Vec<f64> {
        let total = self.count();
        if total == 0 {
            return vec![0.0; self.buckets.len()];
        }
        self.buckets
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Lower bound of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.lo + width * i as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn inverted_bounds_panic() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-1.0);
        h.record(1.0); // hi is exclusive.
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn probabilities_sum_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for v in [0.0, 1.0, 2.0, 100.0] {
            h.record(v);
        }
        let p: f64 = h.probabilities().iter().sum();
        assert!((p - 0.75).abs() < 1e-9);
    }

    #[test]
    fn bucket_lo_positions() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bucket_lo(0), 0.0);
        assert_eq!(h.bucket_lo(4), 8.0);
    }

    #[test]
    fn empty_probabilities_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.probabilities(), vec![0.0; 3]);
    }
}
