//! Measurement substrate for the MinatoLoader reproduction.
//!
//! This crate provides the statistics the paper reports on:
//!
//! * [`Summary`] — the Avg/Med/P75/P90/Min–Max–Std rows of Table 2,
//! * [`Reservoir`] — bounded-memory sample collection with exact quantiles
//!   over the retained window (used by the load-balancer profiler),
//! * [`TimeSeries`] — utilization and throughput traces (Figures 1b, 3, 7,
//!   8, 10),
//! * [`UtilizationMeter`] — busy-time accounting standing in for
//!   `nvidia-smi`/`dstat`,
//! * [`Ewma`] / [`MovingAverage`] — the moving queue-occupancy average used
//!   by the worker scheduler (paper Formula 2),
//! * [`Histogram`] — fixed-bucket distribution used for batch-composition
//!   analysis (Figure 11b),
//! * [`LogHistogram`] — power-of-two-bucketed latency distribution the
//!   `minato-trace` collector folds lifecycle events into,
//! * [`table`] — plain-text table/CSV rendering for the experiment
//!   harnesses.
//!
//! Everything here is deterministic and allocation-conscious; the hot-path
//! types ([`UtilizationMeter`], [`Counter`]) are lock-free so loader workers
//! can record without contending.

pub mod counter;
pub mod ewma;
pub mod histogram;
pub mod loghist;
pub mod meter;
pub mod reservoir;
pub mod summary;
pub mod table;
pub mod timeseries;

pub use counter::{Counter, RateMeter};
pub use ewma::{Ewma, MovingAverage};
pub use histogram::Histogram;
pub use loghist::LogHistogram;
pub use meter::UtilizationMeter;
pub use reservoir::Reservoir;
pub use summary::Summary;
pub use timeseries::TimeSeries;

/// Computes the `q`-quantile (0.0–1.0) of `sorted` using linear
/// interpolation between order statistics on a pre-sorted slice.
///
/// Returns `None` on an empty slice. `q` outside `[0, 1]` is clamped.
///
/// # Examples
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(minato_metrics::quantile_sorted(&xs, 0.5), Some(2.5));
/// assert_eq!(minato_metrics::quantile_sorted(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Linear interpolation between adjacent order statistics (the "type 7"
    // estimator used by NumPy's default).
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::quantile_sorted;

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile_sorted(&[7.0], 0.0), Some(7.0));
        assert_eq!(quantile_sorted(&[7.0], 0.5), Some(7.0));
        assert_eq!(quantile_sorted(&[7.0], 1.0), Some(7.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile_sorted(&xs, 0.25), Some(2.5));
        assert_eq!(quantile_sorted(&xs, 0.75), Some(7.5));
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(quantile_sorted(&xs, -1.0), Some(1.0));
        assert_eq!(quantile_sorted(&xs, 2.0), Some(3.0));
    }
}
