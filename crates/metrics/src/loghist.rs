//! Log-bucketed latency histogram for the tracing collector.
//!
//! Latencies span six orders of magnitude (sub-microsecond queue hops to
//! multi-second slow samples), so a fixed-width [`Histogram`](crate::Histogram)
//! either loses the tail or the head. [`LogHistogram`] buckets by
//! `floor(log2(ns))`: 64 power-of-two buckets cover the whole `u64`
//! nanosecond range with bounded (~2x) relative error, in constant memory,
//! with allocation-free recording — the properties the per-stage latency
//! breakdown of `minato-trace` needs when folding millions of events.

/// Number of power-of-two buckets (one per possible `ilog2` of a `u64`).
pub const LOG_BUCKETS: usize = 64;

/// A fixed-memory histogram with power-of-two bucket boundaries.
///
/// Values are `u64` (by convention nanoseconds). Bucket `0` holds `0` and
/// `1`; bucket `b > 0` holds `[2^b, 2^(b+1))`. Quantiles interpolate
/// linearly inside the containing bucket.
///
/// # Examples
///
/// ```
/// use minato_metrics::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for ns in [100, 200, 400, 800, 100_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 5);
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((128.0..512.0).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: [u64; LOG_BUCKETS],
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: [0; LOG_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket holding `value`: `floor(log2(value))`, with
    /// `0` mapping to bucket 0.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            value.ilog2() as usize
        }
    }

    /// Lower bound (inclusive) of bucket `b`.
    pub fn bucket_lo(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << b
        }
    }

    /// Upper bound (exclusive) of bucket `b`; saturates at `u64::MAX`
    /// for the last bucket.
    pub fn bucket_hi(b: usize) -> u64 {
        if b >= LOG_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << (b + 1)
        }
    }

    /// Records one observation. Never allocates.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Arithmetic mean of recorded values; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Per-bucket counts (index = `bucket_of(value)`).
    pub fn buckets(&self) -> &[u64; LOG_BUCKETS] {
        &self.counts
    }

    /// Estimated `q`-quantile (clamped to `[0, 1]`), or `None` when
    /// empty.
    ///
    /// The containing bucket is found by cumulative count; the value is
    /// interpolated linearly inside the bucket's `[lo, hi)` range, and
    /// clamped to the observed min/max so estimates never leave the
    /// recorded value range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Continuous rank in [0, total - 1].
        let rank = q * (self.total - 1) as f64;
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let end = cum + c;
            if rank < end as f64 {
                let lo = Self::bucket_lo(b) as f64;
                let hi = Self::bucket_hi(b) as f64;
                // Midpoint-of-slot interpolation within the bucket.
                let frac = ((rank - cum as f64) + 0.5) / c as f64;
                let est = lo + (hi - lo) * frac.clamp(0.0, 1.0);
                return Some(est.clamp(self.min as f64, self.max as f64));
            }
            cum = end;
        }
        // Unreachable with total > 0; fall back to the max.
        Some(self.max as f64)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets the histogram to empty.
    pub fn clear(&mut self) {
        *self = LogHistogram::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // The exact boundary values the collector's stage histograms
        // lean on: 0 and 1 share bucket 0; 2^k opens bucket k; 2^k - 1
        // stays in bucket k - 1.
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 0);
        assert_eq!(LogHistogram::bucket_of(2), 1);
        assert_eq!(LogHistogram::bucket_of(3), 1);
        assert_eq!(LogHistogram::bucket_of(4), 2);
        for k in 2..64 {
            let p = 1u64 << k;
            assert_eq!(LogHistogram::bucket_of(p), k as usize, "2^{k}");
            assert_eq!(LogHistogram::bucket_of(p - 1), k as usize - 1, "2^{k}-1");
        }
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 63);
        assert_eq!(LogHistogram::bucket_hi(63), u64::MAX);
        assert_eq!(LogHistogram::bucket_lo(0), 0);
        assert_eq!(LogHistogram::bucket_hi(0), 2);
    }

    #[test]
    fn single_sample_quantiles_stay_on_the_sample() {
        let mut h = LogHistogram::new();
        h.record(1000);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).expect("non-empty");
            assert_eq!(v, 1000.0, "q={q} clamps to the only observation");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 17);
        }
        let mut prev = 0.0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q).expect("non-empty");
            assert!(v >= prev, "quantiles must be monotone");
            assert!((17.0..=17_000.0).contains(&v), "q={q} out of range: {v}");
            prev = v;
        }
        // Relative error of the median is bounded by the bucket width.
        let p50 = h.quantile(0.5).expect("non-empty");
        let exact = 500.0 * 17.0;
        assert!(p50 / exact < 2.1 && exact / p50 < 2.1, "p50={p50}");
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(h.quantile(1.0).expect("non-empty") <= u64::MAX as f64);
    }

    #[test]
    fn merge_adds_counts_and_extends_range() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1_000_000));
        a.clear();
        assert!(a.is_empty());
    }
}
