//! Busy-time utilization accounting.
//!
//! The paper measures GPU utilization with `nvidia-smi` and CPU utilization
//! with `dstat`. Neither applies to an instrumented Rust runtime, so
//! utilization is derived from first principles instead: every worker (or
//! simulated device) reports the nanoseconds it spent busy, and utilization
//! over an interval is `busy / (interval × slots)` where `slots` is the
//! number of workers/devices sharing the meter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Accumulates busy time across many workers and converts it to a
/// utilization percentage over sampled windows.
///
/// Thread-safe and lock-free; workers call [`UtilizationMeter::add_busy`]
/// from the hot path, a monitor thread calls
/// [`UtilizationMeter::utilization_since`] (or keeps a [`UtilizationWindow`])
/// on its sampling interval.
///
/// # Examples
///
/// ```
/// use minato_metrics::UtilizationMeter;
/// use std::time::Duration;
///
/// let m = UtilizationMeter::new(2); // Two workers.
/// m.add_busy(Duration::from_millis(500));
/// m.add_busy(Duration::from_millis(500));
/// // Over a one-second window with two workers: 1.0s busy / 2.0s capacity.
/// let pct = m.utilization_since(0, Duration::from_secs(1)).1;
/// assert!((pct - 50.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct UtilizationMeter {
    busy_ns: AtomicU64,
    slots: u64,
}

impl UtilizationMeter {
    /// Creates a meter shared by `slots` workers/devices.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> UtilizationMeter {
        assert!(slots > 0, "utilization meter needs at least one slot");
        UtilizationMeter {
            busy_ns: AtomicU64::new(0),
            slots: slots as u64,
        }
    }

    /// Records `busy` time spent working by one worker.
    pub fn add_busy(&self, busy: Duration) {
        self.busy_ns
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Cumulative busy time in nanoseconds since creation.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed)
    }

    /// Number of slots (workers) sharing this meter.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Returns `(current_busy_ns, utilization_percent)` for the window that
    /// started when the cumulative busy counter read `prev_busy_ns` and
    /// lasted `window`.
    ///
    /// The percentage is clamped to `[0, 100]`; clock skew between the busy
    /// counter and the wall clock can otherwise push it slightly above 100.
    pub fn utilization_since(&self, prev_busy_ns: u64, window: Duration) -> (u64, f64) {
        let now = self.busy_ns();
        let delta = now.saturating_sub(prev_busy_ns) as f64;
        let capacity = window.as_nanos() as f64 * self.slots as f64;
        let pct = if capacity <= 0.0 {
            0.0
        } else {
            (delta / capacity * 100.0).clamp(0.0, 100.0)
        };
        (now, pct)
    }
}

/// Stateful helper tying a [`UtilizationMeter`] to a monitor loop: each
/// [`UtilizationWindow::sample`] call yields the utilization percentage over
/// the window since the previous call.
#[derive(Debug)]
pub struct UtilizationWindow {
    prev_busy_ns: u64,
}

impl Default for UtilizationWindow {
    fn default() -> Self {
        UtilizationWindow::new()
    }
}

impl UtilizationWindow {
    /// Creates a window anchored at zero cumulative busy time.
    pub fn new() -> UtilizationWindow {
        UtilizationWindow { prev_busy_ns: 0 }
    }

    /// Samples utilization over the `window` just ended.
    pub fn sample(&mut self, meter: &UtilizationMeter, window: Duration) -> f64 {
        let (now, pct) = meter.utilization_since(self.prev_busy_ns, window);
        self.prev_busy_ns = now;
        pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = UtilizationMeter::new(0);
    }

    #[test]
    fn full_utilization_is_100() {
        let m = UtilizationMeter::new(1);
        m.add_busy(Duration::from_secs(1));
        let (_, pct) = m.utilization_since(0, Duration::from_secs(1));
        assert!((pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamped_at_100() {
        let m = UtilizationMeter::new(1);
        m.add_busy(Duration::from_secs(2));
        let (_, pct) = m.utilization_since(0, Duration::from_secs(1));
        assert_eq!(pct, 100.0);
    }

    #[test]
    fn zero_window_is_zero() {
        let m = UtilizationMeter::new(1);
        m.add_busy(Duration::from_secs(1));
        let (_, pct) = m.utilization_since(0, Duration::ZERO);
        assert_eq!(pct, 0.0);
    }

    #[test]
    fn windowed_sampling_consumes_busy_time() {
        let m = UtilizationMeter::new(2);
        let mut w = UtilizationWindow::new();
        m.add_busy(Duration::from_secs(1));
        let pct1 = w.sample(&m, Duration::from_secs(1));
        assert!((pct1 - 50.0).abs() < 1e-9);
        // No new busy time: next window reads zero.
        let pct2 = w.sample(&m, Duration::from_secs(1));
        assert_eq!(pct2, 0.0);
    }
}
