//! Bounded-memory observation store with exact quantiles over the window.
//!
//! The MinatoLoader profiler (§4.2 of the paper) records per-sample
//! preprocessing times continuously during training and recomputes the
//! fast/slow cutoff (P75 by default) on demand. A full trace would grow
//! without bound for long runs, so observations are kept in a fixed-size
//! ring: quantiles are exact over the most recent `capacity` observations,
//! which also gives the profiler the windowed behaviour the paper relies on
//! to track workload drift.

use crate::{quantile_sorted, Summary};

/// Sliding-window observation store.
///
/// Keeps the most recent `capacity` values; [`Reservoir::quantile`] and
/// [`Reservoir::summary`] are exact over that window.
///
/// # Examples
///
/// ```
/// use minato_metrics::Reservoir;
///
/// let mut r = Reservoir::new(4);
/// for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
///     r.record(v);
/// }
/// // Window holds [2, 3, 4, 5].
/// assert_eq!(r.len(), 4);
/// assert_eq!(r.quantile(0.5), Some(3.5));
/// ```
#[derive(Debug, Clone)]
pub struct Reservoir {
    ring: Vec<f64>,
    capacity: usize,
    next: usize,
    total_seen: u64,
}

impl Reservoir {
    /// Creates a reservoir retaining the most recent `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Reservoir {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            ring: Vec::with_capacity(capacity.min(4096)),
            capacity,
            next: 0,
            total_seen: 0,
        }
    }

    /// Records one observation, evicting the oldest if the window is full.
    ///
    /// Non-finite values are ignored (they would poison quantiles).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.total_seen += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(value);
        } else {
            self.ring[self.next] = value;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Number of observations currently in the window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Maximum number of observations retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether no observation has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total observations ever recorded (including evicted ones).
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Exact `q`-quantile over the retained window, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let mut sorted = self.ring.clone();
        sorted.sort_by(f64::total_cmp);
        quantile_sorted(&sorted, q)
    }

    /// Full distribution summary over the retained window.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.ring)
    }

    /// Fraction of retained observations strictly greater than `threshold`.
    ///
    /// The load balancer uses this to detect mis-calibrated timeouts
    /// (too many samples classified slow → fall back to a higher
    /// percentile, §4.2).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.ring.is_empty() {
            return 0.0;
        }
        let above = self.ring.iter().filter(|&&v| v > threshold).count();
        above as f64 / self.ring.len() as f64
    }

    /// Clears the window (e.g., at the end of the warm-up phase).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Reservoir::new(0);
    }

    #[test]
    fn fills_then_evicts_oldest() {
        let mut r = Reservoir::new(3);
        for v in [1.0, 2.0, 3.0] {
            r.record(v);
        }
        assert_eq!(r.len(), 3);
        r.record(10.0); // Evicts 1.0.
        assert_eq!(r.len(), 3);
        assert_eq!(r.quantile(0.0), Some(2.0));
        assert_eq!(r.quantile(1.0), Some(10.0));
        assert_eq!(r.total_seen(), 4);
    }

    #[test]
    fn ignores_non_finite() {
        let mut r = Reservoir::new(4);
        r.record(f64::NAN);
        r.record(f64::NEG_INFINITY);
        assert!(r.is_empty());
        assert_eq!(r.total_seen(), 0);
    }

    #[test]
    fn fraction_above_counts_strictly_greater() {
        let mut r = Reservoir::new(8);
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.record(v);
        }
        assert_eq!(r.fraction_above(2.0), 0.5);
        assert_eq!(r.fraction_above(0.0), 1.0);
        assert_eq!(r.fraction_above(4.0), 0.0);
    }

    #[test]
    fn clear_resets_window_but_not_total() {
        let mut r = Reservoir::new(2);
        r.record(1.0);
        r.record(2.0);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total_seen(), 2);
        r.record(5.0);
        assert_eq!(r.quantile(0.5), Some(5.0));
    }

    #[test]
    fn empty_reservoir_quantiles_and_summary() {
        let r = Reservoir::new(8);
        assert_eq!(r.quantile(0.0), None);
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.quantile(1.0), None);
        let s = r.summary();
        assert_eq!(s.count, 0);
        assert_eq!(r.fraction_above(0.0), 0.0);
    }

    #[test]
    fn single_sample_quantiles_collapse_to_it() {
        let mut r = Reservoir::new(8);
        r.record(42.0);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(r.quantile(q), Some(42.0), "q={q}");
        }
        let s = r.summary();
        assert_eq!((s.count, s.median, s.p99), (1, 42.0, 42.0));
    }

    #[test]
    fn saturated_window_keeps_exact_quantiles_over_recent_values() {
        // Fill far past capacity: quantiles must be exact over exactly
        // the last `capacity` observations, with eviction in FIFO order.
        let mut r = Reservoir::new(100);
        for v in 0..1000 {
            r.record(v as f64);
        }
        assert_eq!(r.len(), 100);
        assert_eq!(r.total_seen(), 1000);
        assert_eq!(r.quantile(0.0), Some(900.0));
        assert_eq!(r.quantile(1.0), Some(999.0));
        // Window is [900, 999]: type-7 median is 949.5.
        assert_eq!(r.quantile(0.5), Some(949.5));
    }

    #[test]
    fn window_quantile_tracks_drift() {
        // Workload drift: early samples fast, later samples slow. A small
        // window must track the recent (slow) regime.
        let mut r = Reservoir::new(10);
        for _ in 0..100 {
            r.record(1.0);
        }
        for _ in 0..10 {
            r.record(100.0);
        }
        assert_eq!(r.quantile(0.5), Some(100.0));
    }
}
