//! Distribution summary matching the paper's Table 2 columns.

use crate::quantile_sorted;

/// Summary statistics of a set of observations.
///
/// Mirrors the columns of Table 2 in the paper: average, median, 75th and
/// 90th percentile, minimum, maximum, and standard deviation. All values are
/// in the unit of the input observations (the paper uses milliseconds).
///
/// # Examples
///
/// ```
/// use minato_metrics::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]);
/// assert_eq!(s.count, 5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 100.0);
/// assert!((s.avg - 22.0).abs() < 1e-9);
/// assert_eq!(s.median, 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub avg: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Summary {
    /// An all-zero summary describing an empty set of observations.
    pub const EMPTY: Summary = Summary {
        count: 0,
        avg: 0.0,
        median: 0.0,
        p75: 0.0,
        p90: 0.0,
        p99: 0.0,
        min: 0.0,
        max: 0.0,
        std: 0.0,
    };

    /// Computes the summary of `values`.
    ///
    /// Non-finite values are ignored. Returns [`Summary::EMPTY`] when no
    /// finite value is present.
    pub fn of(values: &[f64]) -> Summary {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return Summary::EMPTY;
        }
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let avg = sum / count as f64;
        let var = sorted.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / count as f64;
        // `quantile_sorted` only returns `None` for empty input, which was
        // handled above.
        let q = |p: f64| quantile_sorted(&sorted, p).unwrap_or(0.0);
        Summary {
            count,
            avg,
            median: q(0.50),
            p75: q(0.75),
            p90: q(0.90),
            p99: q(0.99),
            min: sorted[0],
            max: sorted[count - 1],
            std: var.sqrt(),
        }
    }

    /// Renders the summary in the paper's Table 2 format:
    /// `Avg Med. P75 P90 Min–Max–Std`.
    pub fn table2_row(&self) -> String {
        format!(
            "{:>7.0} {:>7.0} {:>7.0} {:>7.0}  {:.0}-{:.0}-{:.0}",
            self.avg, self.median, self.p75, self.p90, self.min, self.max, self.std
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_summary() {
        assert_eq!(Summary::of(&[]), Summary::EMPTY);
        assert_eq!(Summary::of(&[f64::NAN, f64::INFINITY]), Summary::EMPTY);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.avg, 5.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.p90, 5.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn known_distribution() {
        // 1..=100: avg 50.5, median 50.5, min 1, max 100.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert!((s.avg - 50.5).abs() < 1e-9);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        // Population std of 1..100 is sqrt((100^2-1)/12) ≈ 28.866.
        assert!((s.std - 28.866).abs() < 1e-2);
        assert!((s.p90 - 90.1).abs() < 1e-9);
    }

    #[test]
    fn ignores_nan_values() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.avg, 2.0);
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let s = Summary::of(&[9.0, 1.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn table2_row_formats() {
        let s = Summary::of(&[10.0, 20.0, 30.0]);
        let row = s.table2_row();
        assert!(row.contains("20"));
        assert!(row.contains("10-30"));
    }
}
