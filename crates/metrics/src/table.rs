//! Plain-text table and CSV rendering for experiment harnesses.
//!
//! Every figure/table harness in `minato-bench` prints its result both as an
//! aligned terminal table (for eyeballing paper-vs-measured) and as CSV (for
//! external plotting). This module keeps that formatting in one place.

use std::fmt::Write as _;

/// An aligned text table with a header row.
///
/// # Examples
///
/// ```
/// use minato_metrics::table::Table;
///
/// let mut t = Table::new(&["loader", "time (s)"]);
/// t.row(&["pytorch", "210"]);
/// t.row(&["minato", "81"]);
/// let text = t.render();
/// assert!(text.contains("pytorch"));
/// assert!(text.contains("81"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the column count.
    pub fn row(&mut self, cells: &[&str]) {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row from owned strings (convenient with `format!`).
    pub fn row_owned(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders the table with space-aligned columns and a separator line.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<width$}");
                if i + 1 < w.len() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180 quoting for cells containing
    /// commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats a `f64` with `digits` decimal places, trimming `-0`.
pub fn fnum(v: f64, digits: usize) -> String {
    let s = format!("{v:.digits$}");
    if s.starts_with("-0") && s.trim_start_matches(['-', '0', '.']).is_empty() {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["xxxxxx", "1"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header and row columns start at the same offset.
        let h_off = lines[0].find("long_header").expect("header present");
        let r_off = lines[2].find('1').expect("row present");
        assert_eq!(h_off, r_off);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(&["k", "v"]);
        t.row(&["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["only"]);
        let text = t.render();
        assert!(text.contains("only"));
    }

    #[test]
    fn fnum_strips_negative_zero() {
        assert_eq!(fnum(-0.0001, 2), "0.00");
        assert_eq!(fnum(1.234, 2), "1.23");
        assert_eq!(fnum(-1.0, 1), "-1.0");
    }

    #[test]
    fn row_owned_and_len() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row_owned(vec![format!("{}", 42)]);
        assert_eq!(t.len(), 1);
    }
}
