//! Sampled time series for utilization/throughput traces.
//!
//! Figures 1b, 3, 7, 8 and 10 of the paper are time-series plots (CPU%,
//! GPU%, MB/s, GB/s over seconds). [`TimeSeries`] is the in-memory
//! representation produced by monitor threads and the simulator, and
//! rendered by the bench harnesses as CSV or sparkline-style rows.

/// A `(time_seconds, value)` series with append-only semantics.
///
/// # Examples
///
/// ```
/// use minato_metrics::TimeSeries;
///
/// let mut ts = TimeSeries::new("gpu_pct");
/// ts.push(0.0, 10.0);
/// ts.push(1.0, 90.0);
/// assert_eq!(ts.mean(), 50.0);
/// assert_eq!(ts.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series labelled `name`.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Series label (used as a CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Times should be non-decreasing; out-of-order
    /// samples are accepted but flagged by [`TimeSeries::is_monotonic`].
    pub fn push(&mut self, time_s: f64, value: f64) {
        self.times.push(time_s);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample timestamps in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean of the values; 0.0 when empty.
    ///
    /// This is the "avg: 57.4%" style figure the paper annotates its usage
    /// plots with.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Maximum value; 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Whether timestamps are non-decreasing.
    pub fn is_monotonic(&self) -> bool {
        self.times.windows(2).all(|w| w[0] <= w[1])
    }

    /// Time-weighted average using each sample as the value until the next
    /// timestamp. Falls back to [`TimeSeries::mean`] with fewer than two
    /// samples.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.times.len() < 2 {
            return self.mean();
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for w in 0..self.times.len() - 1 {
            let dt = (self.times[w + 1] - self.times[w]).max(0.0);
            area += self.values[w] * dt;
            span += dt;
        }
        if span <= 0.0 {
            self.mean()
        } else {
            area / span
        }
    }

    /// Downsamples to at most `max_points` samples by striding, preserving
    /// the final sample. Used to keep harness output readable.
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        if max_points == 0 || self.len() <= max_points {
            return self.clone();
        }
        let stride = self.len().div_ceil(max_points);
        let mut out = TimeSeries::new(self.name.clone());
        let mut i = 0;
        while i < self.len() {
            out.push(self.times[i], self.values[i]);
            i += stride;
        }
        let last = self.len() - 1;
        if out.times.last() != Some(&self.times[last]) {
            out.push(self.times[last], self.values[last]);
        }
        out
    }

    /// Renders a compact unicode sparkline of the values (for terminal
    /// harness output), scaled to the series max.
    pub fn sparkline(&self, width: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.is_empty() || width == 0 {
            return String::new();
        }
        let ds = self.downsample(width);
        let max = ds.max().max(f64::MIN_POSITIVE);
        ds.values()
            .iter()
            .map(|v| {
                let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_stats() {
        let ts = TimeSeries::new("x");
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.max(), 0.0);
        assert!(ts.is_monotonic());
        assert!(ts.is_empty());
    }

    #[test]
    fn mean_and_max() {
        let mut ts = TimeSeries::new("x");
        ts.push(0.0, 1.0);
        ts.push(1.0, 3.0);
        assert_eq!(ts.mean(), 2.0);
        assert_eq!(ts.max(), 3.0);
    }

    #[test]
    fn monotonic_detection() {
        let mut ts = TimeSeries::new("x");
        ts.push(0.0, 1.0);
        ts.push(2.0, 1.0);
        assert!(ts.is_monotonic());
        ts.push(1.0, 1.0);
        assert!(!ts.is_monotonic());
    }

    #[test]
    fn monotonic_invariant_under_monitor_style_appends() {
        // The loader's monitor thread appends with a strictly advancing
        // clock; downsampling and equal timestamps must both preserve
        // the monotonic invariant the trace series rely on.
        let mut ts = TimeSeries::new("x");
        for i in 0..50 {
            ts.push(i as f64 * 0.5, (i % 7) as f64);
        }
        ts.push(24.5, 0.0); // Equal timestamps are still monotonic.
        assert!(ts.is_monotonic());
        assert!(ts.downsample(8).is_monotonic());
        ts.push(0.25, 1.0);
        assert!(!ts.is_monotonic(), "regressing time must be flagged");
    }

    #[test]
    fn time_weighted_mean_weights_by_interval() {
        let mut ts = TimeSeries::new("x");
        // Value 0 for 9s, then value 100 for 1s (final sample has no span).
        ts.push(0.0, 0.0);
        ts.push(9.0, 100.0);
        ts.push(10.0, 100.0);
        // Area = 0*9 + 100*1 = 100 over span 10 -> 10.0.
        assert!((ts.time_weighted_mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_preserves_endpoints() {
        let mut ts = TimeSeries::new("x");
        for i in 0..100 {
            ts.push(i as f64, i as f64);
        }
        let ds = ts.downsample(10);
        assert!(ds.len() <= 11);
        assert_eq!(ds.times()[0], 0.0);
        assert_eq!(*ds.times().last().expect("non-empty"), 99.0);
    }

    #[test]
    fn downsample_noop_when_small() {
        let mut ts = TimeSeries::new("x");
        ts.push(0.0, 5.0);
        let ds = ts.downsample(10);
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn sparkline_has_requested_width_bound() {
        let mut ts = TimeSeries::new("x");
        for i in 0..1000 {
            ts.push(i as f64, (i % 10) as f64);
        }
        let s = ts.sparkline(40);
        assert!(s.chars().count() <= 41);
        assert!(!s.is_empty());
    }
}
