//! Minimal neural-network substrate for the accuracy experiments.
//!
//! Figure 11a of the paper shows that MinatoLoader's batch reordering does
//! not change the accuracy trajectory, only the wall-clock time to reach
//! it. Reproducing that claim needs a *real* model whose training consumes
//! batches in exactly the order a loader emits them. This crate provides
//! just enough machinery for that: a dense matrix type, a two-layer MLP
//! with softmax cross-entropy, SGD, and synthetic classification /
//! segmentation-like tasks with accuracy and Dice metrics.
//!
//! Everything is deterministic given a seed, so two loaders can be
//! compared run-for-run.

pub mod matrix;
pub mod mlp;
pub mod task;

pub use matrix::Matrix;
pub use mlp::{Mlp, MlpConfig};
pub use task::{dice_score, SyntheticTask};
