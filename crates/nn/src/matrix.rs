//! Row-major dense matrices with the handful of ops an MLP needs.

use rand::{rngs::StdRng, SeedableRng};

/// A row-major `rows × cols` matrix of `f32`.
///
/// # Examples
///
/// ```
/// use minato_nn::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from explicit data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier-style random initialization from a seed.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (6.0 / (rows + cols) as f32).sqrt();
        let mut m = Matrix::zeros(rows, cols);
        for v in m.data.iter_mut() {
            // Uniform in [-scale, scale) from the seeded RNG.
            use rand::RngExt;
            *v = (rng.random::<f32>() * 2.0 - 1.0) * scale;
        }
        m
    }

    /// Element at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.get(k, j);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Adds `rhs` scaled by `alpha` in place (`self += alpha * rhs`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, rhs: &Matrix, alpha: f32) {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        let g = Matrix::from_vec(1, 2, vec![2.0, 4.0]);
        a.add_scaled(&g, -0.5);
        assert_eq!(a.data, vec![-1.0, -2.0]);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(4, 4, 9);
        let b = Matrix::xavier(4, 4, 9);
        assert_eq!(a, b);
        let scale = (6.0 / 8.0f32).sqrt();
        assert!(a.data.iter().all(|v| v.abs() <= scale));
    }
}
