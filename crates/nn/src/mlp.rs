//! Two-layer MLP with softmax cross-entropy and SGD.

use crate::matrix::Matrix;

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Weight-initialization seed.
    pub seed: u64,
}

/// A two-layer perceptron: `softmax(relu(x·W1 + b1)·W2 + b2)`.
///
/// # Examples
///
/// ```
/// use minato_nn::{Mlp, MlpConfig};
///
/// let mut m = Mlp::new(MlpConfig {
///     input_dim: 4,
///     hidden_dim: 8,
///     classes: 3,
///     lr: 0.1,
///     seed: 1,
/// });
/// let x = vec![vec![0.1, 0.2, 0.3, 0.4]];
/// let loss = m.train_batch(&x, &[1]);
/// assert!(loss > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    cfg: MlpConfig,
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
}

impl Mlp {
    /// Creates an MLP with Xavier-initialized weights.
    pub fn new(cfg: MlpConfig) -> Mlp {
        Mlp {
            w1: Matrix::xavier(cfg.input_dim, cfg.hidden_dim, cfg.seed),
            b1: vec![0.0; cfg.hidden_dim],
            w2: Matrix::xavier(cfg.hidden_dim, cfg.classes, cfg.seed ^ 0xABCD),
            b2: vec![0.0; cfg.classes],
            cfg,
        }
    }

    fn forward(&self, xs: &[Vec<f32>]) -> (Matrix, Matrix) {
        let n = xs.len();
        let mut x = Matrix::zeros(n, self.cfg.input_dim);
        for (i, row) in xs.iter().enumerate() {
            for (j, &v) in row.iter().take(self.cfg.input_dim).enumerate() {
                x.set(i, j, v);
            }
        }
        let mut h = x.matmul(&self.w1);
        for i in 0..n {
            for j in 0..self.cfg.hidden_dim {
                let v = h.get(i, j) + self.b1[j];
                h.set(i, j, v.max(0.0)); // ReLU.
            }
        }
        let mut logits = h.matmul(&self.w2);
        for i in 0..n {
            for j in 0..self.cfg.classes {
                let v = logits.get(i, j) + self.b2[j];
                logits.set(i, j, v);
            }
        }
        (h, logits)
    }

    fn softmax_rows(logits: &Matrix) -> Matrix {
        let mut p = logits.clone();
        for i in 0..p.rows {
            let row = &mut p.data[i * p.cols..(i + 1) * p.cols];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum.max(1e-12);
            }
        }
        p
    }

    /// One SGD step on a batch; returns the mean cross-entropy loss.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ or the batch is empty.
    pub fn train_batch(&mut self, xs: &[Vec<f32>], ys: &[usize]) -> f32 {
        assert_eq!(xs.len(), ys.len(), "features/labels length mismatch");
        assert!(!xs.is_empty(), "empty batch");
        let n = xs.len();
        let (h, logits) = self.forward(xs);
        let probs = Self::softmax_rows(&logits);
        // Loss + dLogits.
        let mut loss = 0.0f32;
        let mut dlogits = probs.clone();
        for (i, &label) in ys.iter().enumerate() {
            let y = label.min(self.cfg.classes - 1);
            loss -= probs.get(i, y).max(1e-12).ln();
            dlogits.set(i, y, dlogits.get(i, y) - 1.0);
        }
        dlogits.map_inplace(|v| v / n as f32);
        // Backprop.
        let dw2 = h.transpose().matmul(&dlogits);
        let mut db2 = vec![0.0f32; self.cfg.classes];
        for i in 0..n {
            for (j, b) in db2.iter_mut().enumerate() {
                *b += dlogits.get(i, j);
            }
        }
        let mut dh = dlogits.matmul(&self.w2.transpose());
        for i in 0..n {
            for j in 0..self.cfg.hidden_dim {
                if h.get(i, j) <= 0.0 {
                    dh.set(i, j, 0.0); // ReLU gate.
                }
            }
        }
        // Rebuild x for dW1.
        let mut x = Matrix::zeros(n, self.cfg.input_dim);
        for (i, row) in xs.iter().enumerate() {
            for (j, &v) in row.iter().take(self.cfg.input_dim).enumerate() {
                x.set(i, j, v);
            }
        }
        let dw1 = x.transpose().matmul(&dh);
        let mut db1 = vec![0.0f32; self.cfg.hidden_dim];
        for i in 0..n {
            for (j, b) in db1.iter_mut().enumerate() {
                *b += dh.get(i, j);
            }
        }
        // SGD update.
        let lr = self.cfg.lr;
        self.w1.add_scaled(&dw1, -lr);
        self.w2.add_scaled(&dw2, -lr);
        for (b, d) in self.b1.iter_mut().zip(&db1) {
            *b -= lr * d;
        }
        for (b, d) in self.b2.iter_mut().zip(&db2) {
            *b -= lr * d;
        }
        loss / n as f32
    }

    /// Predicted class per input row.
    pub fn predict(&self, xs: &[Vec<f32>]) -> Vec<usize> {
        if xs.is_empty() {
            return Vec::new();
        }
        let (_, logits) = self.forward(xs);
        (0..logits.rows)
            .map(|i| {
                logits
                    .row(i)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Fraction of correct predictions on a labelled set.
    pub fn accuracy(&self, xs: &[Vec<f32>], ys: &[usize]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let preds = self.predict(xs);
        let correct = preds.iter().zip(ys).filter(|(p, y)| p == y).count();
        correct as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SyntheticTask;

    fn cfg() -> MlpConfig {
        MlpConfig {
            input_dim: 8,
            hidden_dim: 16,
            classes: 3,
            lr: 0.05,
            seed: 3,
        }
    }

    #[test]
    fn loss_decreases_on_repeated_batch() {
        let task = SyntheticTask::blobs(8, 3, 60, 42);
        let mut m = Mlp::new(cfg());
        let first = m.train_batch(&task.features, &task.labels);
        let mut last = first;
        for _ in 0..60 {
            last = m.train_batch(&task.features, &task.labels);
        }
        assert!(last < first * 0.7, "loss {first} -> {last}");
    }

    #[test]
    fn learns_separable_blobs() {
        let task = SyntheticTask::blobs(8, 3, 300, 7);
        let mut m = Mlp::new(cfg());
        for _ in 0..80 {
            for (xs, ys) in task.batches(32) {
                m.train_batch(xs, ys);
            }
        }
        let acc = m.accuracy(&task.features, &task.labels);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let task = SyntheticTask::blobs(8, 3, 64, 5);
        let run = || {
            let mut m = Mlp::new(cfg());
            for _ in 0..10 {
                m.train_batch(&task.features, &task.labels);
            }
            m.accuracy(&task.features, &task.labels)
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_batch_panics() {
        let mut m = Mlp::new(cfg());
        let _ = m.train_batch(&[vec![0.0; 8]], &[0, 1]);
    }

    #[test]
    fn predict_empty_is_empty() {
        let m = Mlp::new(cfg());
        assert!(m.predict(&[]).is_empty());
        assert_eq!(m.accuracy(&[], &[]), 0.0);
    }
}
