//! Synthetic learning tasks with accuracy/Dice metrics.

use rand::{rngs::StdRng, RngExt, SeedableRng};

/// A labelled synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticTask {
    /// Feature vectors.
    pub features: Vec<Vec<f32>>,
    /// Class labels aligned with `features`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl SyntheticTask {
    /// Gaussian blobs: `classes` clusters in `dim` dimensions,
    /// `n` samples total, linearly separable with margin.
    pub fn blobs(dim: usize, classes: usize, n: usize, seed: u64) -> SyntheticTask {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random unit-ish centers, far apart on a scaled simplex.
        let centers: Vec<Vec<f32>> = (0..classes)
            .map(|c| {
                (0..dim)
                    .map(|d| if d % classes == c { 3.0 } else { 0.0 })
                    .collect()
            })
            .collect();
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            let center = &centers[c];
            let x: Vec<f32> = center
                .iter()
                .map(|&m| m + (rng.random::<f32>() - 0.5))
                .collect();
            features.push(x);
            labels.push(c);
        }
        SyntheticTask {
            features,
            labels,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the task has no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Iterator over `(features, labels)` chunks of `batch` samples.
    pub fn batches(&self, batch: usize) -> impl Iterator<Item = (&[Vec<f32>], &[usize])> {
        let batch = batch.max(1);
        self.features.chunks(batch).zip(self.labels.chunks(batch))
    }
}

/// Sørensen–Dice overlap of two binary masks (the 3D-UNet metric of
/// Figure 11a).
///
/// Returns 1.0 for two empty masks (perfect vacuous agreement).
///
/// # Panics
///
/// Panics if the masks have different lengths.
pub fn dice_score(pred: &[bool], truth: &[bool]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mask length mismatch");
    let inter = pred.iter().zip(truth).filter(|(p, t)| **p && **t).count() as f64;
    let p = pred.iter().filter(|&&x| x).count() as f64;
    let t = truth.iter().filter(|&&x| x).count() as f64;
    if p + t == 0.0 {
        1.0
    } else {
        2.0 * inter / (p + t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shapes_and_labels() {
        let t = SyntheticTask::blobs(6, 3, 30, 1);
        assert_eq!(t.len(), 30);
        assert_eq!(t.features[0].len(), 6);
        assert!(t.labels.iter().all(|&l| l < 3));
        // Balanced classes by construction.
        let c0 = t.labels.iter().filter(|&&l| l == 0).count();
        assert_eq!(c0, 10);
    }

    #[test]
    fn blobs_deterministic() {
        let a = SyntheticTask::blobs(4, 2, 16, 9);
        let b = SyntheticTask::blobs(4, 2, 16, 9);
        assert_eq!(a.features, b.features);
    }

    #[test]
    fn batches_cover_everything() {
        let t = SyntheticTask::blobs(4, 2, 10, 2);
        let total: usize = t.batches(3).map(|(x, _)| x.len()).sum();
        assert_eq!(total, 10);
        let sizes: Vec<usize> = t.batches(3).map(|(x, _)| x.len()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn dice_extremes() {
        assert_eq!(dice_score(&[true, true], &[true, true]), 1.0);
        assert_eq!(dice_score(&[true, false], &[false, true]), 0.0);
        assert_eq!(dice_score(&[], &[]), 1.0);
        let half = dice_score(&[true, true], &[true, false]);
        assert!((half - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dice_rejects_mismatch() {
        let _ = dice_score(&[true], &[true, false]);
    }
}
