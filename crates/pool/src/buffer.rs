//! The size-classed, lock-striped buffer pool.
//!
//! Layout: capacities are bucketed into power-of-two *size classes*
//! (`min_class_elems << i` elements). Each class keeps its buffers in
//! several independently locked *stripes*; a thread hashes to a home
//! stripe, so two workers recycling concurrently rarely contend. On top
//! of the shared stripes sits one *thread-local fast slot* per
//! `(pool, class)`: a stage that recycles its input buffer and
//! immediately acquires a similar-sized output buffer (the common
//! pipeline pattern) round-trips through thread-local storage without
//! touching a lock.
//!
//! Byte accounting covers the shared stripes only — thread-local slots
//! are bounded at one buffer per class per thread and are intentionally
//! outside the budget (they are the pool's L1, not its capacity).

use parking_lot::Mutex;
use std::any::Any;
use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Observer of acquire outcomes, for per-event tracing layered on top of
/// the pool's own counters.
///
/// Called synchronously from [`BufferPool::acquire`] on every
/// resolution — `hit = true` when the buffer came from a free-list
/// (thread-local fast slot or shared stripe), `false` on a fresh
/// allocation. Implementations run on the hot path and must be cheap,
/// non-blocking, and allocation-free.
pub trait AcquireObserver: Send + Sync {
    /// One acquire resolved; `hit` is whether pooled memory served it.
    fn on_acquire(&self, hit: bool);
}

/// Configuration of one [`BufferPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Total bytes the pool may keep resident across all shared
    /// free-lists; 0 disables the pool entirely.
    pub budget_bytes: u64,
    /// Per-class cap on resident bytes (0 = no extra cap beyond
    /// `budget_bytes`). Prevents one buffer size from monopolizing the
    /// whole budget.
    pub class_budget_bytes: u64,
    /// Lock stripes per size class.
    pub stripes: usize,
    /// Capacity (in elements) of the smallest size class.
    pub min_class_elems: usize,
    /// Number of power-of-two size classes; the largest class holds
    /// buffers of `min_class_elems << (num_classes - 1)` elements.
    pub num_classes: usize,
    /// Keep one per-thread fast slot per class in front of the striped
    /// lists.
    pub thread_local_slots: bool,
}

impl PoolConfig {
    /// A pool with `budget_bytes` of capacity and default geometry:
    /// classes from 64 elements up to ~2 M elements, 4 stripes per
    /// class, per-class cap of half the budget.
    pub fn with_budget(budget_bytes: u64) -> PoolConfig {
        PoolConfig {
            budget_bytes,
            class_budget_bytes: budget_bytes / 2,
            stripes: 4,
            min_class_elems: 64,
            num_classes: 16,
            thread_local_slots: true,
        }
    }

    /// A disabled pool (budget 0): acquires allocate, recycles drop.
    pub fn disabled() -> PoolConfig {
        PoolConfig::with_budget(0)
    }
}

/// Counter snapshot of one pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from a free-list (including fast slots).
    pub hits: u64,
    /// Acquires that fell through to a fresh allocation.
    pub misses: u64,
    /// Hits served by a thread-local fast slot (subset of `hits`).
    pub tl_hits: u64,
    /// Buffers accepted back into the pool.
    pub recycled: u64,
    /// Buffers rejected on return (budget exceeded, too small, or pool
    /// disabled) and released to the allocator instead.
    pub dropped: u64,
    /// Bytes currently resident in the shared free-lists. This is the
    /// steady-state working set the pool holds between samples.
    pub bytes: u64,
}

impl PoolStats {
    /// Total acquires.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of acquires served from pooled memory (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let l = self.lookups();
        if l == 0 {
            0.0
        } else {
            self.hits as f64 / l as f64
        }
    }

    /// Element-wise sum (for aggregating the pools of a
    /// [`PoolSet`](crate::PoolSet)).
    pub fn merged(&self, other: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            tl_hits: self.tl_hits + other.tl_hits,
            recycled: self.recycled + other.recycled,
            dropped: self.dropped + other.dropped,
            bytes: self.bytes + other.bytes,
        }
    }
}

struct SizeClass<T> {
    /// Every buffer stored in this class has `capacity() >= cap_elems`.
    cap_elems: usize,
    bytes: AtomicU64,
    stripes: Vec<Mutex<Vec<Vec<T>>>>,
}

/// A size-classed, lock-striped pool of `Vec<T>` buffers.
///
/// `acquire` hands out a cleared buffer with at least the requested
/// capacity; `recycle` takes any buffer back, clears it, and files it
/// under the largest class it can serve (or drops it if the budget is
/// full). Buffers allocated on a miss are sized to the class capacity,
/// so recycled memory keeps fitting the class it came from.
pub struct BufferPool<T: Send + 'static> {
    id: u64,
    cfg: PoolConfig,
    classes: Vec<SizeClass<T>>,
    bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    tl_hits: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
    /// Per-acquire observer (tracing); set once, first setter wins.
    observer: OnceLock<Arc<dyn AcquireObserver>>,
    /// Audit mode: [`Recycled`] guards currently outstanding.
    #[cfg(minato_lock_graph)]
    audit_guards: AtomicU64,
}

static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_SEED: AtomicUsize = AtomicUsize::new(0);

/// Ids of pools currently alive. Fast slots of *dropped* pools are
/// unreachable by any future acquire, so long-lived threads sweep them
/// out of their TLS map (amortized, see [`tl_put`]) instead of leaking
/// one parked buffer per (dead pool, class) forever.
static LIVE_POOLS: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// TLS map size beyond which an insert of a new key triggers a sweep of
/// entries whose pool has been dropped.
const FAST_SLOT_SWEEP_THRESHOLD: usize = 64;

thread_local! {
    /// Stripe selector: a stable small integer per thread.
    static THREAD_SEED: usize = NEXT_THREAD_SEED.fetch_add(1, Ordering::Relaxed);
    /// Fast slots: at most one parked buffer per (pool id, class) per
    /// thread. Entries are type-erased so one TLS map serves pools of
    /// every element type; the unique pool id guarantees the downcast
    /// target matches. An entry holding an empty (zero-capacity) vec is
    /// the vacant marker, so the `Box` itself is allocated once per
    /// (pool, class, thread) and reused forever after.
    static FAST_SLOTS: RefCell<HashMap<(u64, usize), Box<dyn Any>>> =
        RefCell::new(HashMap::new());
}

fn tl_take<T: 'static>(pool: u64, class: usize) -> Option<Vec<T>> {
    FAST_SLOTS.with(|slots| {
        let mut slots = slots.borrow_mut();
        let slot = slots.get_mut(&(pool, class))?;
        let buf = slot.downcast_mut::<Vec<T>>()?;
        if buf.capacity() == 0 {
            None
        } else {
            Some(std::mem::take(buf))
        }
    })
}

/// Parks `buf` in the calling thread's fast slot; hands it back if the
/// slot is occupied (or holds a different element type).
///
/// Creating a *new* slot on a grown map first sweeps entries belonging
/// to dropped pools, so a thread that outlives many loader generations
/// (the typical training-loop consumer) keeps at most
/// [`FAST_SLOT_SWEEP_THRESHOLD`]-ish live slots instead of accreting
/// parked buffers for every pool that ever existed.
fn tl_put<T: Send + 'static>(pool: u64, class: usize, buf: Vec<T>) -> Result<(), Vec<T>> {
    FAST_SLOTS.with(|slots| {
        let mut slots = slots.borrow_mut();
        if slots.len() >= FAST_SLOT_SWEEP_THRESHOLD && !slots.contains_key(&(pool, class)) {
            let live = LIVE_POOLS.lock();
            slots.retain(|&(id, _), _| live.contains(&id));
        }
        match slots.entry((pool, class)) {
            Entry::Vacant(e) => {
                e.insert(Box::new(buf));
                Ok(())
            }
            Entry::Occupied(mut e) => match e.get_mut().downcast_mut::<Vec<T>>() {
                Some(slot) if slot.capacity() == 0 => {
                    *slot = buf;
                    Ok(())
                }
                _ => Err(buf),
            },
        }
    })
}

impl<T: Send + 'static> BufferPool<T> {
    /// Creates a pool with the given configuration.
    pub fn new(mut cfg: PoolConfig) -> BufferPool<T> {
        cfg.stripes = cfg.stripes.max(1);
        cfg.min_class_elems = cfg.min_class_elems.max(1);
        cfg.num_classes = cfg.num_classes.clamp(1, 48);
        if cfg.class_budget_bytes == 0 {
            cfg.class_budget_bytes = cfg.budget_bytes;
        }
        let classes = (0..cfg.num_classes)
            .map(|i| SizeClass {
                cap_elems: cfg.min_class_elems << i,
                bytes: AtomicU64::new(0),
                stripes: (0..cfg.stripes).map(|_| Mutex::new(Vec::new())).collect(),
            })
            .collect();
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        LIVE_POOLS.lock().push(id);
        BufferPool {
            id,
            cfg,
            classes,
            bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            tl_hits: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            observer: OnceLock::new(),
            #[cfg(minato_lock_graph)]
            audit_guards: AtomicU64::new(0),
        }
    }

    /// Installs an [`AcquireObserver`] notified on every acquire. First
    /// setter wins; later calls are ignored (the slot is write-once so
    /// the hot path needs no lock to read it).
    pub fn set_observer(&self, obs: Arc<dyn AcquireObserver>) {
        let _ = self.observer.set(obs);
    }

    /// Notifies the observer, if any, of one acquire outcome.
    // minato-verify: hot-path
    #[inline]
    fn observe(&self, hit: bool) {
        if let Some(obs) = self.observer.get() {
            obs.on_acquire(hit);
        }
    }

    /// Whether the pool can hold anything at all.
    pub fn enabled(&self) -> bool {
        self.cfg.budget_bytes > 0
    }

    /// The configuration the pool was built with.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    /// Smallest class able to serve `min_elems`, if any.
    fn class_for_acquire(&self, min_elems: usize) -> Option<usize> {
        self.classes.iter().position(|c| c.cap_elems >= min_elems)
    }

    /// Largest class a buffer of `capacity` elements can serve, if any.
    fn class_for_recycle(&self, capacity: usize) -> Option<usize> {
        self.classes.iter().rposition(|c| c.cap_elems <= capacity)
    }

    /// Returns an *empty* buffer with `capacity() >= min_elems`, served
    /// from the free-lists when possible (thread-local fast slot first,
    /// then the striped shared lists) and freshly allocated otherwise.
    // minato-verify: hot-path (Vec::with_capacity is the pool's one sanctioned allocation)
    pub fn acquire(&self, min_elems: usize) -> Vec<T> {
        if self.enabled() {
            if let Some(ci) = self.class_for_acquire(min_elems) {
                if self.cfg.thread_local_slots {
                    if let Some(buf) = tl_take::<T>(self.id, ci) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.tl_hits.fetch_add(1, Ordering::Relaxed);
                        self.observe(true);
                        return buf;
                    }
                }
                let class = &self.classes[ci];
                let n = class.stripes.len();
                let home = THREAD_SEED.with(|s| *s) % n;
                for k in 0..n {
                    let mut stripe = class.stripes[(home + k) % n].lock();
                    if let Some(buf) = stripe.pop() {
                        drop(stripe);
                        let sz = (buf.capacity() * std::mem::size_of::<T>()) as u64;
                        self.bytes.fetch_sub(sz, Ordering::AcqRel);
                        class.bytes.fetch_sub(sz, Ordering::AcqRel);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.observe(true);
                        return buf;
                    }
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.observe(false);
                // Allocate at class granularity so the buffer stays
                // eligible for this class when it comes back.
                return Vec::with_capacity(class.cap_elems);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.observe(false);
        Vec::with_capacity(min_elems)
    }

    /// Acquires a buffer and fills it to `len` copies of `value` —
    /// byte-identical to `vec![value; len]`, minus the allocation on a
    /// pool hit.
    pub fn acquire_filled(&self, len: usize, value: T) -> Vec<T>
    where
        T: Clone,
    {
        let mut buf = self.acquire(len);
        buf.resize(len, value);
        buf
    }

    /// Acquires a buffer wrapped in an RAII guard that recycles it on
    /// drop.
    pub fn acquire_guard(&self, min_elems: usize) -> Recycled<'_, T> {
        #[cfg(minato_lock_graph)]
        self.audit_guards.fetch_add(1, Ordering::AcqRel);
        Recycled {
            buf: self.acquire(min_elems),
            detached: false,
            pool: self,
        }
    }

    /// Takes a buffer back. The buffer is cleared and filed under the
    /// largest class its capacity can serve; it is dropped instead when
    /// the pool is disabled, the buffer is smaller than the smallest
    /// class, or accepting it would exceed the class/global byte budget.
    // minato-verify: hot-path
    pub fn recycle(&self, mut buf: Vec<T>) {
        let cap = buf.capacity();
        if !self.enabled() || cap == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let Some(ci) = self.class_for_recycle(cap) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        buf.clear();
        if self.cfg.thread_local_slots {
            match tl_put(self.id, ci, buf) {
                Ok(()) => {
                    self.recycled.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(back) => buf = back,
            }
        }
        let sz = (cap * std::mem::size_of::<T>()) as u64;
        // Optimistic add, undo on overshoot: never lets `bytes` sit
        // above the budget from a concurrent observer's perspective by
        // more than the in-flight reservation being rolled back.
        let class = &self.classes[ci];
        let global = self.bytes.fetch_add(sz, Ordering::AcqRel) + sz;
        if global > self.cfg.budget_bytes {
            self.bytes.fetch_sub(sz, Ordering::AcqRel);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let class_total = class.bytes.fetch_add(sz, Ordering::AcqRel) + sz;
        if class_total > self.cfg.class_budget_bytes {
            class.bytes.fetch_sub(sz, Ordering::AcqRel);
            self.bytes.fetch_sub(sz, Ordering::AcqRel);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let n = class.stripes.len();
        let home = THREAD_SEED.with(|s| *s) % n;
        class.stripes[home].lock().push(buf);
        self.recycled.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            tl_hits: self.tl_hits.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Acquire),
        }
    }
}

impl<T: Send + 'static> BufferPool<T> {
    /// Audit-mode teardown check: the byte counters must agree with the
    /// memory actually resident in the free-lists, and no RAII guard may
    /// still be outstanding. Catches leaked accounting the steady-state
    /// counters would silently absorb.
    #[cfg(minato_lock_graph)]
    fn audit_at_drop(&mut self) {
        let outstanding = self.audit_guards.load(Ordering::Acquire);
        assert!(
            outstanding == 0,
            "pool audit (id {}): {} Recycled guard(s) outstanding at pool drop",
            self.id,
            outstanding
        );
        let mut total = 0u64;
        for (ci, class) in self.classes.iter().enumerate() {
            let mut resident = 0u64;
            for stripe in &class.stripes {
                for buf in stripe.lock().iter() {
                    resident += (buf.capacity() * std::mem::size_of::<T>()) as u64;
                }
            }
            let counter = class.bytes.load(Ordering::Acquire);
            assert!(
                resident == counter,
                "pool audit (id {}): class {} ({} elems) counts {} bytes but \
                 holds {} bytes resident",
                self.id,
                ci,
                class.cap_elems,
                counter,
                resident
            );
            total += resident;
        }
        let global = self.bytes.load(Ordering::Acquire);
        assert!(
            total == global,
            "pool audit (id {}): global counter says {} bytes but classes \
             hold {} bytes resident",
            self.id,
            global,
            total
        );
    }
}

impl<T: Send + 'static> Drop for BufferPool<T> {
    fn drop(&mut self) {
        #[cfg(minato_lock_graph)]
        self.audit_at_drop();
        // Deregister so long-lived threads' fast-slot sweeps (see
        // `tl_put`) can reclaim slots parked under this pool's id.
        LIVE_POOLS.lock().retain(|&id| id != self.id);
    }
}

impl<T: Send + 'static> std::fmt::Debug for BufferPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("id", &self.id)
            .field("budget_bytes", &self.cfg.budget_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

/// RAII handle over a pooled buffer: derefs to the `Vec<T>` and returns
/// the memory to its pool when dropped. Use [`Recycled::detach`] to keep
/// the buffer instead.
#[must_use = "dropping the guard immediately recycles the buffer"]
pub struct Recycled<'p, T: Send + 'static> {
    buf: Vec<T>,
    detached: bool,
    pool: &'p BufferPool<T>,
}

/// Alias emphasizing the guard role of [`Recycled`].
pub type PoolGuard<'p, T> = Recycled<'p, T>;

impl<T: Send + 'static> Recycled<'_, T> {
    /// Takes the buffer out of the guard; it will *not* be recycled.
    pub fn detach(mut self) -> Vec<T> {
        self.detached = true;
        std::mem::take(&mut self.buf)
    }
}

impl<T: Send + 'static> Deref for Recycled<'_, T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T: Send + 'static> DerefMut for Recycled<'_, T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T: Send + 'static> Drop for Recycled<'_, T> {
    fn drop(&mut self) {
        #[cfg(minato_lock_graph)]
        self.pool.audit_guards.fetch_sub(1, Ordering::AcqRel);
        if !self.detached {
            self.pool.recycle(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(budget: u64) -> BufferPool<f32> {
        BufferPool::new(PoolConfig::with_budget(budget))
    }

    /// A pool with fast slots off, so hits/misses exercise the shared
    /// striped lists deterministically.
    fn shared_pool(budget: u64) -> BufferPool<f32> {
        let mut cfg = PoolConfig::with_budget(budget);
        cfg.thread_local_slots = false;
        BufferPool::new(cfg)
    }

    #[test]
    fn acquire_miss_then_hit_round_trip() {
        let p = shared_pool(1 << 20);
        let buf = p.acquire(100);
        assert!(buf.capacity() >= 100);
        assert!(buf.is_empty());
        assert_eq!(p.stats().misses, 1);
        p.recycle(buf);
        assert_eq!(p.stats().recycled, 1);
        assert!(p.stats().bytes > 0);
        let again = p.acquire(100);
        assert_eq!(p.stats().hits, 1);
        assert!(again.capacity() >= 100);
        assert_eq!(p.stats().bytes, 0, "resident bytes follow the buffer out");
    }

    #[test]
    fn thread_local_slot_short_circuits_locks() {
        let p = pool(1 << 20);
        let buf = p.acquire(64);
        p.recycle(buf);
        let _again = p.acquire(64);
        let s = p.stats();
        assert_eq!(s.tl_hits, 1, "same-thread round trip uses the fast slot");
        assert_eq!(s.bytes, 0, "fast slots are outside byte accounting");
    }

    #[test]
    fn budget_rejects_excess() {
        // Budget fits one 1024-elem f32 buffer (4096 B) but not two.
        let mut cfg = PoolConfig::with_budget(6000);
        cfg.thread_local_slots = false;
        cfg.class_budget_bytes = 6000;
        let p: BufferPool<f32> = BufferPool::new(cfg);
        let a = p.acquire(1000);
        let b = p.acquire(1000);
        p.recycle(a);
        p.recycle(b);
        let s = p.stats();
        assert_eq!(s.recycled, 1);
        assert_eq!(s.dropped, 1);
        assert!(s.bytes <= 6000);
    }

    #[test]
    fn per_class_budget_caps_one_size() {
        let mut cfg = PoolConfig::with_budget(1 << 20);
        cfg.class_budget_bytes = 4096; // One 1024-elem f32 buffer.
        cfg.thread_local_slots = false;
        let p: BufferPool<f32> = BufferPool::new(cfg);
        p.recycle(Vec::with_capacity(1024));
        p.recycle(Vec::with_capacity(1024));
        let s = p.stats();
        assert_eq!((s.recycled, s.dropped), (1, 1));
    }

    #[test]
    fn disabled_pool_is_transparent() {
        let p = pool(0);
        let buf = p.acquire(50);
        assert_eq!(buf.capacity(), 50, "disabled pool allocates exactly");
        p.recycle(buf);
        let s = p.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.recycled, 0);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn oversized_requests_fall_through() {
        let p = shared_pool(1 << 30);
        let max = p.config().min_class_elems << (p.config().num_classes - 1);
        let buf = p.acquire(max + 1);
        assert!(buf.capacity() > max);
        assert_eq!(p.stats().misses, 1);
        p.recycle(buf); // Still lands in the largest class.
        assert_eq!(p.stats().recycled, 1);
    }

    #[test]
    fn tiny_buffers_are_dropped() {
        let p = shared_pool(1 << 20);
        p.recycle(Vec::with_capacity(1)); // Below min_class_elems (64).
        assert_eq!(p.stats().dropped, 1);
    }

    #[test]
    fn acquire_filled_matches_vec_macro() {
        let p = pool(1 << 20);
        let a = p.acquire_filled(33, 7.0f32);
        assert_eq!(a, vec![7.0f32; 33]);
        p.recycle(a);
        let b = p.acquire_filled(33, 7.0f32);
        assert_eq!(
            b,
            vec![7.0f32; 33],
            "reused buffer is re-filled identically"
        );
    }

    #[test]
    fn guard_returns_on_drop_and_detach_keeps() {
        let p = pool(1 << 20);
        {
            let mut g = p.acquire_guard(128);
            g.push(1.0);
            assert_eq!(g.len(), 1);
        }
        assert_eq!(p.stats().recycled, 1);
        let g = p.acquire_guard(128);
        let kept = g.detach();
        assert!(kept.capacity() >= 128);
        assert_eq!(p.stats().recycled, 1, "detached buffer is not recycled");
    }

    #[test]
    fn dead_pool_fast_slots_are_swept() {
        // A long-lived thread recycling into many short-lived pools (a
        // fresh loader per epoch) must not accrete one parked buffer
        // per dead pool forever: inserting a new slot on a grown map
        // sweeps entries whose pool was dropped.
        for _ in 0..FAST_SLOT_SWEEP_THRESHOLD + 8 {
            let p = pool(1 << 20);
            let b = p.acquire(64);
            p.recycle(b); // Parks in this thread's fast slot.
        } // Pool dropped: its slot is now dead weight.
        let p = pool(1 << 20);
        let b = p.acquire(64);
        p.recycle(b);
        FAST_SLOTS.with(|slots| {
            let len = slots.borrow().len();
            // The sweep is amortized (it runs when an insert finds the
            // map at the threshold), so the live bound is the threshold
            // itself — not 72+ entries accreted across generations.
            assert!(
                len <= FAST_SLOT_SWEEP_THRESHOLD,
                "dead pools' fast slots must be swept: {len} entries remain"
            );
        });
    }

    #[test]
    fn concurrent_stress_keeps_bytes_under_budget() {
        use std::sync::Arc;
        let mut cfg = PoolConfig::with_budget(64 * 1024);
        cfg.thread_local_slots = false;
        let p: Arc<BufferPool<f32>> = Arc::new(BufferPool::new(cfg));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for i in 0..500usize {
                        let want = 64 << ((t + i) % 6);
                        let mut b = p.acquire(want);
                        b.resize(want, 0.5);
                        assert!(p.stats().bytes <= 64 * 1024, "budget violated");
                        p.recycle(b);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = p.stats();
        assert!(s.bytes <= 64 * 1024);
        assert!(s.hits > 0, "steady-state traffic must reuse buffers");
    }

    /// Normal traffic — guards, detaches, shared-list round trips —
    /// must satisfy the drop-time audit.
    #[cfg(minato_lock_graph)]
    #[test]
    fn audit_passes_after_normal_traffic() {
        let p = shared_pool(1 << 20);
        let b = p.acquire(100);
        p.recycle(b);
        let g = p.acquire_guard(200);
        drop(g);
        let g = p.acquire_guard(300);
        let _kept = g.detach();
        drop(p); // Audit runs here; a mismatch panics.
    }

    /// A corrupted byte counter must trip the drop-time audit.
    #[cfg(minato_lock_graph)]
    #[test]
    fn audit_catches_corrupted_counter() {
        let p = shared_pool(1 << 20);
        let b = p.acquire(100);
        p.recycle(b);
        // Inflate the global counter behind the pool's back.
        p.bytes.fetch_add(4096, Ordering::AcqRel);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drop(p)))
            .expect_err("audit must panic on counter mismatch");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("pool audit"), "unexpected panic: {msg}");
    }
}
