//! # minato-pool
//!
//! Buffer recycling for the zero-allocation hot path.
//!
//! Every pipeline stage that materializes a fresh `Vec<f32>`/`Vec<u8>`
//! payload pays the allocator once per sample per stage — a k-stage
//! pipeline churns O(k) heap buffers per delivered sample, and the batch
//! consumer drops them all on the floor. This crate makes that memory
//! *recirculate* instead:
//!
//! * [`BufferPool<T>`] — size-classed, lock-striped free-lists of raw
//!   buffers with per-class byte budgets, thread-local fast slots, and
//!   hit / miss / recycled / dropped counters.
//! * [`Recycled`] (alias [`PoolGuard`]) — an RAII handle that derefs to
//!   the underlying `Vec<T>` and returns the memory to its pool on drop.
//! * [`PoolSet`] — the typed bundle (`f32` voxels/pixels/features plus
//!   `u8` label masks) the loader threads through
//!   `TransformCtx`, so kernels acquire scratch and return their old
//!   buffers without knowing which pool instance serves them.
//! * [`Reclaim`] — how a delivered sample hands its buffers back when
//!   the training loop drops the batch (the consumer side of the
//!   recycle loop).
//!
//! A pool with `budget_bytes == 0` is *disabled*: every acquire falls
//! through to a plain allocation and every recycle drops the buffer, so
//! default-off behavior is byte-identical to an unpooled build.

mod buffer;
mod set;

pub use buffer::{AcquireObserver, BufferPool, PoolConfig, PoolGuard, PoolStats, Recycled};
pub use set::{PoolSet, PoolSetStats, Reclaim};
