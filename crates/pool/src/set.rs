//! The typed pool bundle the loader threads through its hot path, and
//! the [`Reclaim`] trait closing the recycle loop on the consumer side.

use crate::buffer::{AcquireObserver, BufferPool, PoolConfig, PoolStats};
use std::sync::Arc;

/// The buffer pools a preprocessing pipeline draws from: one for `f32`
/// payloads (pixels, voxels, waveforms, feature matrices) and one for
/// `u8` payloads (label masks, encoded bytes).
///
/// Built with a single byte budget that is split 7:1 between the `f32`
/// and `u8` pools (mirroring the voxel:label byte ratio of the
/// volumetric workload); use [`PoolSet::with_configs`] for custom
/// splits.
pub struct PoolSet {
    f32s: BufferPool<f32>,
    u8s: BufferPool<u8>,
}

impl PoolSet {
    /// Creates a pool set with `budget_bytes` of total capacity
    /// (0 = disabled).
    pub fn new(budget_bytes: u64) -> PoolSet {
        let u8_budget = budget_bytes / 8;
        PoolSet {
            f32s: BufferPool::new(PoolConfig::with_budget(budget_bytes - u8_budget)),
            u8s: BufferPool::new(PoolConfig::with_budget(u8_budget)),
        }
    }

    /// Creates a pool set from explicit per-pool configurations.
    pub fn with_configs(f32_cfg: PoolConfig, u8_cfg: PoolConfig) -> PoolSet {
        PoolSet {
            f32s: BufferPool::new(f32_cfg),
            u8s: BufferPool::new(u8_cfg),
        }
    }

    /// A pool set that recycles nothing (acquires allocate, recycles
    /// drop). Useful to engage in-place pipeline execution without
    /// retaining memory.
    pub fn disabled() -> PoolSet {
        PoolSet::new(0)
    }

    /// Whether any member pool can retain buffers.
    pub fn enabled(&self) -> bool {
        self.f32s.enabled() || self.u8s.enabled()
    }

    /// The `f32` buffer pool.
    pub fn f32s(&self) -> &BufferPool<f32> {
        &self.f32s
    }

    /// The `u8` buffer pool.
    pub fn u8s(&self) -> &BufferPool<u8> {
        &self.u8s
    }

    /// Installs an [`AcquireObserver`] on both member pools (tracing
    /// sees every acquire regardless of element type). First setter
    /// wins per pool; later calls are ignored.
    pub fn set_observer(&self, obs: Arc<dyn AcquireObserver>) {
        self.f32s.set_observer(Arc::clone(&obs));
        self.u8s.set_observer(obs);
    }

    /// Counter snapshot across both pools.
    pub fn stats(&self) -> PoolSetStats {
        PoolSetStats {
            f32s: self.f32s.stats(),
            u8s: self.u8s.stats(),
        }
    }
}

impl std::fmt::Debug for PoolSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolSet")
            .field("f32s", &self.f32s)
            .field("u8s", &self.u8s)
            .finish()
    }
}

/// Per-pool counter snapshots of a [`PoolSet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSetStats {
    /// Counters of the `f32` pool.
    pub f32s: PoolStats,
    /// Counters of the `u8` pool.
    pub u8s: PoolStats,
}

impl PoolSetStats {
    /// Both pools summed into one counter set.
    pub fn combined(&self) -> PoolStats {
        self.f32s.merged(&self.u8s)
    }
}

/// Hands a value's heap buffers back to the pools it (or its successors
/// in the pipeline) drew them from.
///
/// Implemented by sample types so the loader's delivery path can close
/// the recycle loop: when the training loop drops a delivered batch,
/// each unconsumed sample is reclaimed and its buffers become the next
/// samples' scratch memory. Types without poolable buffers implement
/// this as a no-op — reclaiming is always safe, never required.
pub trait Reclaim: Send + 'static {
    /// Consumes the value, recycling whatever buffers it owns.
    fn reclaim(self, pools: &PoolSet);
}

macro_rules! noop_reclaim {
    ($($t:ty),* $(,)?) => {$(
        impl Reclaim for $t {
            fn reclaim(self, _pools: &PoolSet) {}
        }
    )*};
}

noop_reclaim!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
);

impl Reclaim for Vec<f32> {
    fn reclaim(self, pools: &PoolSet) {
        pools.f32s().recycle(self);
    }
}

impl Reclaim for Vec<u8> {
    fn reclaim(self, pools: &PoolSet) {
        pools.u8s().recycle(self);
    }
}

impl Reclaim for String {
    fn reclaim(self, pools: &PoolSet) {
        pools.u8s().recycle(self.into_bytes());
    }
}

impl<T: Reclaim> Reclaim for Option<T> {
    fn reclaim(self, pools: &PoolSet) {
        if let Some(v) = self {
            v.reclaim(pools);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_split_favors_f32() {
        let s = PoolSet::new(80);
        assert_eq!(s.f32s().config().budget_bytes, 70);
        assert_eq!(s.u8s().config().budget_bytes, 10);
        assert!(s.enabled());
        assert!(!PoolSet::disabled().enabled());
    }

    #[test]
    fn reclaim_routes_buffers_by_type() {
        let s = PoolSet::new(1 << 20);
        vec![0.0f32; 256].reclaim(&s);
        vec![0u8; 256].reclaim(&s);
        7u32.reclaim(&s);
        Some(vec![0.0f32; 256]).reclaim(&s);
        let st = s.stats();
        assert_eq!(st.f32s.recycled, 2);
        assert_eq!(st.u8s.recycled, 1);
        assert_eq!(st.combined().recycled, 3);
    }

    #[test]
    fn disabled_set_reclaims_to_nowhere() {
        let s = PoolSet::disabled();
        vec![0.0f32; 256].reclaim(&s);
        assert_eq!(s.stats().combined().recycled, 0);
        assert_eq!(s.stats().combined().dropped, 1);
    }
}
