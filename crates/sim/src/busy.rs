//! Busy-interval accounting → per-second utilization/throughput series.
//!
//! The simulator records resource activity as `(start, end)` intervals;
//! this module buckets them into fixed-width bins so harnesses can emit
//! the paper's per-second CPU%/GPU%/GB/s traces.

use crate::time::{SimDuration, SimTime};
use minato_metrics::TimeSeries;

/// Accumulates (optionally weighted) busy intervals into fixed buckets.
#[derive(Debug, Clone)]
pub struct IntervalAccumulator {
    bucket: SimDuration,
    /// Busy-seconds (or weight-units) per bucket.
    buckets: Vec<f64>,
}

impl IntervalAccumulator {
    /// Creates an accumulator with `bucket`-wide bins.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> IntervalAccumulator {
        assert!(bucket.0 > 0, "bucket width must be positive");
        IntervalAccumulator {
            bucket,
            buckets: Vec::new(),
        }
    }

    /// Records a busy interval `[start, end)`.
    pub fn add(&mut self, start: SimTime, end: SimTime) {
        self.add_weighted(start, end, 1.0);
    }

    /// Records an interval carrying `weight` units spread uniformly over
    /// it (e.g., bytes for disk-throughput traces). For `weight = 1.0`
    /// the units are busy-seconds.
    pub fn add_weighted(&mut self, start: SimTime, end: SimTime, weight: f64) {
        if end <= start {
            return;
        }
        let span = (end - start).as_secs_f64();
        let rate = weight / span; // Units per second, uniform.
        let bw = self.bucket.as_secs_f64();
        let first = (start.0 / self.bucket.0) as usize;
        let last = ((end.0 - 1) / self.bucket.0) as usize;
        if self.buckets.len() <= last {
            self.buckets.resize(last + 1, 0.0);
        }
        for b in first..=last {
            let b_start = b as f64 * bw;
            let b_end = b_start + bw;
            let overlap =
                (end.as_secs_f64().min(b_end) - start.as_secs_f64().max(b_start)).max(0.0);
            // For weight = 1: overlap seconds of busy time. Otherwise:
            // rate × overlap units.
            self.buckets[b] += if (weight - 1.0).abs() < f64::EPSILON && span > 0.0 {
                overlap
            } else {
                rate * overlap
            };
        }
    }

    /// Units accumulated between `from` and `to` (bucket-aligned
    /// approximation).
    pub fn busy_seconds_between(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let first = (from.0 / self.bucket.0) as usize;
        let last = ((to.0.saturating_sub(1)) / self.bucket.0) as usize;
        self.buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| *i >= first && *i <= last)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Total accumulated units.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Converts to a utilization-percent time series given `slots`
    /// parallel servers (100% = all slots busy for a whole bucket).
    pub fn to_utilization_series(&self, name: &str, slots: usize) -> TimeSeries {
        let mut ts = TimeSeries::new(name);
        let bw = self.bucket.as_secs_f64();
        let cap = bw * slots.max(1) as f64;
        for (i, &busy) in self.buckets.iter().enumerate() {
            ts.push(i as f64 * bw, (busy / cap * 100.0).clamp(0.0, 100.0));
        }
        ts
    }

    /// Converts to a rate series in `units/second` (e.g., bytes per
    /// second when intervals were weighted with bytes).
    pub fn to_rate_series(&self, name: &str) -> TimeSeries {
        let mut ts = TimeSeries::new(name);
        let bw = self.bucket.as_secs_f64();
        for (i, &units) in self.buckets.iter().enumerate() {
            ts.push(i as f64 * bw, units / bw);
        }
        ts
    }

    /// Number of buckets with any recorded activity span.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// Records instantaneous counter values into a time series (e.g., bytes
/// trained so far → MB/s throughput per bucket).
#[derive(Debug, Clone)]
pub struct CounterSeries {
    bucket: SimDuration,
    /// Units per bucket.
    buckets: Vec<f64>,
}

impl CounterSeries {
    /// Creates a counter series with `bucket`-wide bins.
    pub fn new(bucket: SimDuration) -> CounterSeries {
        assert!(bucket.0 > 0, "bucket width must be positive");
        CounterSeries {
            bucket,
            buckets: Vec::new(),
        }
    }

    /// Records `units` occurring at time `at`.
    pub fn add(&mut self, at: SimTime, units: f64) {
        let b = (at.0 / self.bucket.0) as usize;
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0.0);
        }
        self.buckets[b] += units;
    }

    /// Converts to a rate series (`units/second` per bucket).
    pub fn to_rate_series(&self, name: &str) -> TimeSeries {
        let mut ts = TimeSeries::new(name);
        let bw = self.bucket.as_secs_f64();
        for (i, &units) in self.buckets.iter().enumerate() {
            ts.push(i as f64 * bw, units / bw);
        }
        ts
    }

    /// Total units recorded.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: SimDuration = SimDuration(1_000_000_000);

    #[test]
    fn interval_splits_across_buckets() {
        let mut a = IntervalAccumulator::new(SEC);
        // Busy from 0.5s to 2.5s: buckets get 0.5, 1.0, 0.5.
        a.add(SimTime::from_secs_f64(0.5), SimTime::from_secs_f64(2.5));
        let ts = a.to_utilization_series("u", 1);
        let v = ts.values();
        assert!((v[0] - 50.0).abs() < 1e-6);
        assert!((v[1] - 100.0).abs() < 1e-6);
        assert!((v[2] - 50.0).abs() < 1e-6);
        assert!((a.total() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_interval_spreads_bytes() {
        let mut a = IntervalAccumulator::new(SEC);
        // 10 MB over 2 seconds → 5 MB/s in each bucket.
        a.add_weighted(SimTime::ZERO, SimTime::from_secs_f64(2.0), 10e6);
        let ts = a.to_rate_series("bps");
        assert!((ts.values()[0] - 5e6).abs() < 1.0);
        assert!((ts.values()[1] - 5e6).abs() < 1.0);
    }

    #[test]
    fn empty_interval_ignored() {
        let mut a = IntervalAccumulator::new(SEC);
        a.add(SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(1.0));
        assert!(a.is_empty());
    }

    #[test]
    fn utilization_capped_by_slots() {
        let mut a = IntervalAccumulator::new(SEC);
        // Two servers busy the full first second.
        a.add(SimTime::ZERO, SimTime::from_secs_f64(1.0));
        a.add(SimTime::ZERO, SimTime::from_secs_f64(1.0));
        let one = a.to_utilization_series("u", 1);
        assert_eq!(one.values()[0], 100.0); // Clamped.
        let two = a.to_utilization_series("u", 2);
        assert!((two.values()[0] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn busy_between_window() {
        let mut a = IntervalAccumulator::new(SEC);
        a.add(SimTime::ZERO, SimTime::from_secs_f64(3.0));
        let w = a.busy_seconds_between(SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(2.0));
        assert!((w - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counter_series_rates() {
        let mut c = CounterSeries::new(SEC);
        c.add(SimTime::from_secs_f64(0.2), 100.0);
        c.add(SimTime::from_secs_f64(0.8), 100.0);
        c.add(SimTime::from_secs_f64(1.5), 50.0);
        let ts = c.to_rate_series("r");
        assert!((ts.values()[0] - 200.0).abs() < 1e-9);
        assert!((ts.values()[1] - 50.0).abs() < 1e-9);
        assert!((c.total() - 250.0).abs() < 1e-9);
    }
}
