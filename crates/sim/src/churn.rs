//! Event-driven tenant-churn simulation over the real admission layer.
//!
//! Unlike the policy simulators (which model the loader's *data path*
//! in virtual time), this module drives the actual
//! [`TenantRegistry`] / [`PoolPlacer`] control path from
//! `minato-exec` with a seeded open-loop arrival process: tenants
//! arrive with exponential interarrival times, hold their admission
//! for an exponential lifetime, and depart — exercising admission,
//! FIFO queueing, promotion, weighted-share recomputation, and
//! placement across multiple pools at churn rates a live test could
//! never reach in reasonable wall time.
//!
//! The capacity invariant is asserted after **every** event: no pool
//! ever holds admitted worker or byte asks beyond its declared
//! capacity, and never more tenants than `max_tenants`. A seed fully
//! determines the run, so any violation replays exactly.
//!
//! [`TenantRegistry`]: minato_core::prelude::TenantRegistry
//! [`PoolPlacer`]: minato_core::prelude::PoolPlacer

use crate::time::{SimDuration, SimTime};
use minato_core::prelude::{
    Admission, PlacementPolicy, PoolPlacer, TenantCapacity, TenantId, TenantRegistry, TenantSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap};

/// Configuration of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Number of shared pools tenants are placed across.
    pub pools: usize,
    /// Worker threads per pool (drives weighted shares).
    pub threads_per_pool: usize,
    /// Per-pool admission capacity.
    pub capacity: TenantCapacity,
    /// Tenant-to-pool assignment policy.
    pub policy: PlacementPolicy,
    /// Virtual length of the run, in seconds.
    pub duration_s: f64,
    /// Mean tenant interarrival time, in seconds (exponential).
    pub mean_interarrival_s: f64,
    /// Mean tenant lifetime, in seconds (exponential).
    pub mean_lifetime_s: f64,
    /// Worker asks are drawn uniformly from this inclusive range.
    pub workers_ask: (usize, usize),
    /// Byte asks are drawn uniformly from this inclusive range.
    pub bytes_ask: (u64, u64),
    /// Fair-share weights are drawn uniformly from this inclusive range.
    pub weight: (u32, u32),
    /// Master seed; one seed reproduces the whole run byte-for-byte.
    pub seed: u64,
}

impl ChurnConfig {
    /// A small but busy default: 3 pools under steady oversubscription
    /// pressure (mean offered load ≈ 6.7 concurrent tenants against 12
    /// admission slots, with lumpy asks), ~200 arrivals per run.
    pub fn paper_default(seed: u64) -> ChurnConfig {
        ChurnConfig {
            pools: 3,
            threads_per_pool: 8,
            capacity: TenantCapacity {
                max_tenants: 4,
                max_workers: 8,
                max_bytes: 1 << 30,
                lease: std::time::Duration::ZERO,
            },
            policy: PlacementPolicy::BestFit,
            duration_s: 600.0,
            mean_interarrival_s: 3.0,
            mean_lifetime_s: 20.0,
            workers_ask: (1, 4),
            bytes_ask: (1 << 20, 1 << 28),
            weight: (1, 4),
            seed,
        }
    }
}

/// Aggregate outcome of one churn run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnReport {
    /// Tenants that arrived over the run.
    pub arrivals: u64,
    /// Arrivals admitted immediately by some pool.
    pub admitted_immediately: u64,
    /// Arrivals queued by their placed pool and promoted later.
    pub promoted: u64,
    /// Arrivals no pool would take (ask exceeds every pool's capacity,
    /// or every pool rejected).
    pub rejected: u64,
    /// Admitted tenants that reached the end of their lifetime and
    /// detached.
    pub departed: u64,
    /// Tenants still queued when the run ended (their slot never
    /// freed up).
    pub abandoned: u64,
    /// Largest number of concurrently admitted tenants across all
    /// pools.
    pub peak_active: usize,
    /// Mean virtual seconds a promoted tenant waited in an admission
    /// queue (0 when nothing was promoted).
    pub mean_queue_wait_s: f64,
    /// Admitted-tenant count per pool at the end of the run — the
    /// placement footprint the policy produced.
    pub final_per_pool: Vec<usize>,
}

/// One scheduled simulation event. Orders **earliest first** inside
/// `BinaryHeap` (a max-heap) by reversing the comparison; ties break on
/// the monotone event sequence number so heap order is total and
/// deterministic.
#[derive(Debug, PartialEq, Eq)]
enum ChurnEvent {
    /// A new tenant arrives and asks for placement.
    Arrive(SimTime, u64),
    /// An admitted tenant's lifetime expires; it detaches from the
    /// pool it was placed on.
    Depart(SimTime, u64, usize, TenantId),
}

impl ChurnEvent {
    fn key(&self) -> (SimTime, u64) {
        match self {
            ChurnEvent::Arrive(t, s) => (*t, *s),
            ChurnEvent::Depart(t, s, _, _) => (*t, *s),
        }
    }
}

impl PartialOrd for ChurnEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ChurnEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// Draws an exponential span with the given mean, in virtual seconds.
fn exp_span(rng: &mut StdRng, mean_s: f64) -> f64 {
    let u: f64 = rng.random();
    -(1.0 - u).ln() * mean_s.max(f64::MIN_POSITIVE)
}

/// Checks the admission invariant on every pool; panics with a
/// replayable message on violation.
fn assert_capacity(cfg: &ChurnConfig, pools: &[TenantRegistry], now: SimTime) {
    for (i, pool) in pools.iter().enumerate() {
        let tenants = pool.tenants();
        let workers: usize = tenants.iter().map(|t| t.workers).sum();
        let bytes: u64 = tenants.iter().map(|t| t.bytes).sum();
        assert!(
            tenants.len() <= cfg.capacity.max_tenants
                && workers <= cfg.capacity.max_workers
                && bytes <= cfg.capacity.max_bytes,
            "pool {i} over capacity at t={:.3}s (seed {}): {} tenants, \
             {workers} workers, {bytes} bytes",
            now.as_secs_f64(),
            cfg.seed,
            tenants.len(),
        );
    }
}

/// Runs one seeded churn simulation and returns its report.
///
/// Panics if any pool ever exceeds its declared admission capacity —
/// the run is deterministic in `cfg.seed`, so a panic message is a
/// complete reproduction recipe.
pub fn simulate_churn(cfg: &ChurnConfig) -> ChurnReport {
    assert!(cfg.pools > 0, "churn needs at least one pool");
    let pools: Vec<TenantRegistry> = (0..cfg.pools)
        .map(|_| TenantRegistry::new(cfg.threads_per_pool, cfg.capacity))
        .collect();
    let placer = PoolPlacer::new(cfg.policy, cfg.seed);
    let mut arrival_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x0A22_17A1));
    let mut spec_rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x57EC));
    let mut report = ChurnReport {
        final_per_pool: vec![0; cfg.pools],
        ..ChurnReport::default()
    };
    let end = SimTime::from_secs_f64(cfg.duration_s);
    let mut heap: BinaryHeap<ChurnEvent> = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push(ChurnEvent::Arrive(
        SimTime::from_secs_f64(exp_span(&mut arrival_rng, cfg.mean_interarrival_s)),
        seq,
    ));
    // Tenants waiting in some pool's FIFO queue: id -> (pool, queued-at).
    let mut waiting: HashMap<TenantId, (usize, SimTime)> = HashMap::new();
    let mut queue_wait_total = 0.0f64;
    while let Some(ev) = heap.pop() {
        let (now, _) = ev.key();
        if now > end {
            break;
        }
        match ev {
            ChurnEvent::Arrive(t, _) => {
                report.arrivals += 1;
                let spec = TenantSpec::new(format!("job-{seq}"))
                    .with_weight(spec_rng.random_range(cfg.weight.0..=cfg.weight.1))
                    .with_workers(spec_rng.random_range(cfg.workers_ask.0..=cfg.workers_ask.1))
                    .with_bytes(spec_rng.random_range(cfg.bytes_ask.0..=cfg.bytes_ask.1));
                let lifetime = exp_span(&mut spec_rng, cfg.mean_lifetime_s);
                let refs: Vec<&TenantRegistry> = pools.iter().collect();
                // Place on the policy's pick; when no pool admits right
                // now, fall back to the least-loaded pool and let its
                // admission control queue (or reject) the ask.
                let p = placer.place(&refs, &spec).unwrap_or_else(|| {
                    (0..cfg.pools)
                        .max_by_key(|&i| pools[i].free_workers())
                        .unwrap_or(0)
                });
                match pools[p].attach(spec) {
                    Admission::Admitted(id) => {
                        report.admitted_immediately += 1;
                        seq += 1;
                        heap.push(ChurnEvent::Depart(
                            t + SimDuration::from_secs_f64(lifetime),
                            seq,
                            p,
                            id,
                        ));
                    }
                    Admission::Queued(id) => {
                        waiting.insert(id, (p, t));
                    }
                    Admission::Rejected => report.rejected += 1,
                }
                seq += 1;
                heap.push(ChurnEvent::Arrive(
                    t + SimDuration::from_secs_f64(exp_span(
                        &mut arrival_rng,
                        cfg.mean_interarrival_s,
                    )),
                    seq,
                ));
            }
            ChurnEvent::Depart(t, _, p, id) => {
                pools[p].detach(id);
                report.departed += 1;
                // Departure may promote FIFO heads; promoted tenants
                // start their lifetime now. Sort for deterministic
                // scheduling order (HashMap iteration order is not).
                let mut promoted: Vec<TenantId> = waiting
                    .iter()
                    .filter(|(wid, (wp, _))| *wp == p && pools[p].is_admitted(**wid))
                    .map(|(wid, _)| *wid)
                    .collect();
                promoted.sort_unstable();
                for wid in promoted {
                    if let Some((_, since)) = waiting.remove(&wid) {
                        report.promoted += 1;
                        queue_wait_total += t.saturating_sub(since).as_secs_f64();
                        let lifetime = exp_span(&mut spec_rng, cfg.mean_lifetime_s);
                        seq += 1;
                        heap.push(ChurnEvent::Depart(
                            t + SimDuration::from_secs_f64(lifetime),
                            seq,
                            p,
                            wid,
                        ));
                    }
                }
            }
        }
        let active: usize = pools.iter().map(|p| p.active_tenants()).sum();
        report.peak_active = report.peak_active.max(active);
        assert_capacity(cfg, &pools, now);
    }
    report.abandoned = waiting.len() as u64;
    report.mean_queue_wait_s = if report.promoted > 0 {
        queue_wait_total / report.promoted as f64
    } else {
        0.0
    };
    for (i, pool) in pools.iter().enumerate() {
        report.final_per_pool[i] = pool.active_tenants();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_is_deterministic_in_the_seed() {
        let cfg = ChurnConfig::paper_default(7);
        assert_eq!(simulate_churn(&cfg), simulate_churn(&cfg));
        let other = simulate_churn(&ChurnConfig::paper_default(8));
        assert_ne!(
            simulate_churn(&cfg),
            other,
            "different seeds should not produce identical churn"
        );
    }

    #[test]
    fn churn_exercises_the_whole_admission_lifecycle() {
        // Capacity invariant is asserted inside simulate_churn after
        // every event; this test additionally demands the run actually
        // visited each lifecycle edge.
        for seed in 0..5 {
            let r = simulate_churn(&ChurnConfig::paper_default(seed));
            assert!(r.arrivals > 100, "seed {seed}: too few arrivals: {r:?}");
            assert!(r.admitted_immediately > 0, "seed {seed}: {r:?}");
            assert!(r.departed > 0, "seed {seed}: {r:?}");
            assert!(
                r.promoted > 0,
                "seed {seed}: oversubscription must queue and later \
                 promote someone: {r:?}"
            );
            assert!(
                r.peak_active <= 3 * 4,
                "seed {seed}: peak active exceeds 3 pools x 4 slots: {r:?}"
            );
        }
    }

    #[test]
    fn placement_policies_produce_distinct_footprints() {
        let mut cfg = ChurnConfig::paper_default(11);
        // Light load so placement choice (not saturation) decides pools.
        cfg.mean_interarrival_s = 10.0;
        cfg.mean_lifetime_s = 15.0;
        let run = |policy: PlacementPolicy| {
            let mut c = cfg.clone();
            c.policy = policy;
            simulate_churn(&c)
        };
        let best = run(PlacementPolicy::BestFit);
        let min = run(PlacementPolicy::MinPools);
        let rand = run(PlacementPolicy::Random);
        for r in [&best, &min, &rand] {
            assert!(r.rejected == 0, "light load should admit everyone: {r:?}");
        }
        // MinPools packs the first pool; Random must touch several.
        assert!(
            rand.final_per_pool.iter().filter(|&&n| n > 0).count()
                >= min.final_per_pool.iter().filter(|&&n| n > 0).count(),
            "random spreads at least as wide as min-pools: \
             {rand:?} vs {min:?}"
        );
    }

    #[test]
    fn oversized_asks_are_rejected_not_queued() {
        let mut cfg = ChurnConfig::paper_default(3);
        cfg.workers_ask = (32, 64); // Every ask exceeds max_workers = 8.
        cfg.duration_s = 60.0;
        let r = simulate_churn(&cfg);
        assert!(r.arrivals > 0);
        assert_eq!(r.rejected, r.arrivals, "nothing can ever fit: {r:?}");
        assert_eq!(r.admitted_immediately + r.promoted, 0);
    }
}
