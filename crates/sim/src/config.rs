//! Simulation configurations mirroring the paper's testbeds (§3).

use crate::time::SimDuration;
use minato_data::{GpuArch, WorkloadSpec};

/// DALI-specific simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DaliSimCfg {
    /// Accelerator speedup over CPU preprocessing (§5.1: 10×).
    pub speedup: f64,
    /// `prefetch_queue_depth` (batches buffered between stages).
    pub queue_depth: usize,
}

/// MinatoLoader-specific simulation parameters (§4).
#[derive(Debug, Clone, Copy)]
pub struct MinatoSimCfg {
    /// Enable the adaptive worker scheduler (Formulas 1–2).
    pub adaptive: bool,
    /// Allow the scheduler to resize the *foreground* pool. Disabling
    /// this pins foreground workers (apples-to-apples sweeps) while the
    /// slow-task pool still tracks its backlog.
    pub adaptive_fg: bool,
    /// Timeout percentile (paper default 0.75).
    pub timeout_percentile: f64,
    /// Samples profiled before the timeout activates.
    pub warmup_samples: usize,
    /// Background slow-task workers per GPU.
    pub slow_workers_per_gpu: usize,
    /// Ready-pool capacity (paper: all queues capped at 100).
    pub ready_pool_cap: usize,
}

impl Default for MinatoSimCfg {
    fn default() -> Self {
        MinatoSimCfg {
            adaptive: true,
            adaptive_fg: true,
            timeout_percentile: 0.75,
            warmup_samples: 32,
            slow_workers_per_gpu: 2,
            ready_pool_cap: 100,
        }
    }
}

/// Full configuration of one simulated training run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The workload (pipeline, cost model, training length).
    pub workload: WorkloadSpec,
    /// GPU architecture (step-time calibration).
    pub arch: GpuArch,
    /// Number of GPUs training in data parallel.
    pub n_gpus: usize,
    /// CPU cores available for preprocessing.
    pub cpu_cores: usize,
    /// Preprocessing workers per GPU for MinatoLoader (paper: 12 per
    /// GPU worker).
    pub workers_per_gpu: usize,
    /// Total workers for the in-order baselines (paper tuning for
    /// PyTorch/Pecan: 12; DALI ignores this and uses every core).
    pub inorder_workers_total: usize,
    /// PyTorch `prefetch_factor` / Minato batch-queue depth.
    pub prefetch: usize,
    /// Storage read bandwidth in bytes/second.
    pub storage_bandwidth_bps: f64,
    /// Page-cache capacity in bytes (the cgroup limit in §5.5).
    pub memory_bytes: u64,
    /// Host RAM in bytes (OOM accounting for Figure 4a).
    pub ram_bytes: u64,
    /// GPU memory in bytes (OOM accounting for Figure 4b).
    pub gpu_memory_bytes: u64,
    /// Replicate the dataset this many times (Figure 10 uses 8× KiTS19).
    pub dataset_replication: usize,
    /// Reporting bucket width.
    pub bucket: SimDuration,
    /// Per-sample preprocessing cost reduction from Pecan's AutoOrder
    /// (0.0 for the plain PyTorch loader).
    pub pecan_gain: f64,
    /// Cap on training batches (0 = run the workload's full length); used
    /// to keep sweep harnesses fast.
    pub max_batches: usize,
    /// RNG seed for the sample request order.
    pub seed: u64,
    /// Minato-specific knobs.
    pub minato: MinatoSimCfg,
}

impl SimConfig {
    /// Paper Config. A: 2×64-core EPYC, 512 GB RAM, 4×A100-40GB, shared
    /// Lustre at 200 Gb/s.
    pub fn config_a(workload: WorkloadSpec) -> SimConfig {
        SimConfig {
            workload,
            arch: GpuArch::A100,
            n_gpus: 4,
            cpu_cores: 128,
            workers_per_gpu: 12,
            inorder_workers_total: 12,
            prefetch: 2,
            storage_bandwidth_bps: 25e9,
            memory_bytes: 512_000_000_000,
            ram_bytes: 512_000_000_000,
            gpu_memory_bytes: 40_000_000_000,
            dataset_replication: 1,
            bucket: SimDuration::from_secs_f64(1.0),
            pecan_gain: 0.0,
            max_batches: 0,
            seed: 7,
            minato: MinatoSimCfg::default(),
        }
    }

    /// Paper Config. B: 2×40-core Xeon, 512 GB RAM, 8×V100-32GB, local
    /// 7 TB NVMe (~6.5 GB/s sequential reads, enterprise class).
    pub fn config_b(workload: WorkloadSpec) -> SimConfig {
        SimConfig {
            arch: GpuArch::V100,
            n_gpus: 8,
            cpu_cores: 80,
            storage_bandwidth_bps: 6.5e9,
            gpu_memory_bytes: 32_000_000_000,
            ..SimConfig::config_a(workload)
        }
    }

    /// Total samples one run consumes (respecting `max_batches`).
    pub fn total_samples(&self) -> usize {
        let full = self.workload.total_samples();
        if self.max_batches == 0 {
            full
        } else {
            full.min(self.max_batches * self.workload.batch_size)
        }
    }

    /// Total batches one run consumes.
    pub fn total_batches(&self) -> usize {
        let full = self.workload.total_batches();
        if self.max_batches == 0 {
            full
        } else {
            full.min(self.max_batches)
        }
    }

    /// Effective dataset size in samples (with replication).
    pub fn dataset_len(&self) -> usize {
        self.workload.n_samples * self.dataset_replication.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_sensibly() {
        let a = SimConfig::config_a(WorkloadSpec::object_detection());
        let b = SimConfig::config_b(WorkloadSpec::object_detection());
        assert!(matches!(a.arch, GpuArch::A100));
        assert!(matches!(b.arch, GpuArch::V100));
        assert!(b.storage_bandwidth_bps < a.storage_bandwidth_bps);
        assert_eq!(a.n_gpus, 4);
        assert_eq!(b.n_gpus, 8);
    }

    #[test]
    fn max_batches_caps_totals() {
        let mut c = SimConfig::config_a(WorkloadSpec::object_detection());
        assert_eq!(c.total_batches(), 1000);
        c.max_batches = 10;
        assert_eq!(c.total_batches(), 10);
        assert_eq!(c.total_samples(), 480);
    }

    #[test]
    fn replication_scales_dataset() {
        let mut c = SimConfig::config_b(WorkloadSpec::image_segmentation());
        c.dataset_replication = 8;
        assert_eq!(c.dataset_len(), 210 * 8);
    }
}
