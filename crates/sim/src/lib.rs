//! Discrete-event simulator of single-server multi-GPU training pipelines.
//!
//! The paper's evaluation runs on 4×A100 / 8×V100 servers over hours of
//! wall time; this crate reproduces those experiments in virtual time:
//! CPU worker pools, GPUs, and bandwidth-limited storage with an LRU page
//! cache are modelled as FIFO resources, and each data loader is a
//! deterministic event-driven policy over them. A full paper-scale run
//! simulates in milliseconds, so every figure regenerates exactly.
//!
//! Policies: [`policy::simulate_inorder`] (PyTorch / Pecan / DALI) and
//! [`policy::simulate_minato`] (MinatoLoader and the size-heuristic
//! strawman). Cost models come from [`minato_data::WorkloadSpec`],
//! calibrated to the paper's Table 2.

pub mod busy;
pub mod churn;
pub mod config;
pub mod policy;
pub mod report;
pub mod resources;
pub mod time;

pub use churn::{simulate_churn, ChurnConfig, ChurnReport};
pub use config::{DaliSimCfg, MinatoSimCfg, SimConfig};
pub use policy::{simulate_inorder, simulate_minato, ClassifyMode};
pub use report::SimReport;
pub use time::{SimDuration, SimTime};

use minato_data::WorkloadSpec;

/// Ground-truth "slow sample" threshold: the P75 of preprocessing times
/// over a fixed sample of profiles. Used consistently across all policies
/// so batch-composition comparisons (Figure 11) are apples-to-apples.
pub fn slow_threshold_ms(wl: &WorkloadSpec) -> f64 {
    let n = 2000.min(wl.n_samples.max(1));
    let mut totals: Vec<f64> = (0..n).map(|i| wl.sample_profile(i).total_ms).collect();
    totals.sort_by(f64::total_cmp);
    minato_metrics::quantile_sorted(&totals, 0.75).unwrap_or(f64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_threshold_sits_between_modes_for_speech() {
        let t = slow_threshold_ms(&WorkloadSpec::speech(3.0));
        assert!(t > 400.0 && t < 3000.0, "got {t}");
    }

    #[test]
    fn slow_threshold_near_p75_for_imgseg() {
        let t = slow_threshold_ms(&WorkloadSpec::image_segmentation());
        assert!((500.0..750.0).contains(&t), "got {t}");
    }
}
