//! In-order loader engine: PyTorch DataLoader, Pecan, and DALI policies.
//!
//! All three baselines share PyTorch's pipeline shape (§2.1): batches are
//! pre-planned, each batch is fetched whole by one worker, and delivery
//! is strictly in batch order with a bounded prefetch window. They differ
//! only in execution placement/speed:
//!
//! * **pytorch** — transforms on the CPU pool at 1×, 12 workers total
//!   (the paper's tuned setting, §5.1),
//! * **pecan** — CPU at 1× minus the AutoOrder gain (`pecan_gain`),
//! * **dali** — loading workers on every core, transforms on the
//!   consuming GPU at `speedup`×, FIFO-shared with training steps
//!   (Takeaway 5's contention), window bounded by
//!   `prefetch_queue_depth`.

use crate::busy::CounterSeries;
use crate::config::{DaliSimCfg, SimConfig};
use crate::report::SimReport;
use crate::resources::{Gpu, ServerPool, Storage};
use crate::time::{SimDuration, SimTime};
use minato_core::batch::ReorderBuffer;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Worker `w` finished preprocessing one sample.
    SampleDone { worker: usize },
    /// GPU `g` finished a training step.
    StepDone { gpu: usize },
}

#[derive(Debug, Clone)]
struct BatchStats {
    bytes: u64,
    slow: usize,
    len: usize,
}

struct CurBatch {
    batch_idx: usize,
    gpu: usize,
    local_idx: usize,
    next_sample: usize,
    stats: BatchStats,
}

struct Worker {
    queue: VecDeque<usize>,
    current: Option<CurBatch>,
}

struct GpuState {
    reorder: ReorderBuffer<BatchStats>,
    ready: VecDeque<(SimTime, BatchStats)>,
    consumed: usize,
    busy: bool,
}

/// Runs one simulated training with in-order (PyTorch-family) semantics.
///
/// `dali = None` selects CPU execution (pytorch/pecan depending on
/// `cfg.pecan_gain`); `Some` offloads transforms to the consuming GPU.
pub fn simulate_inorder(name: &str, cfg: &SimConfig, dali: Option<DaliSimCfg>) -> SimReport {
    let wl = &cfg.workload;
    let dataset_len = cfg.dataset_len();
    let total_samples = cfg.total_samples();
    let step = SimDuration::from_ms_f64(wl.gpu_step_ms(cfg.arch));

    // Worker count: the paper tunes PyTorch/Pecan to 12 total workers
    // (§5.1) and gives DALI a loading worker per core.
    let n_workers = match dali {
        Some(_) => cfg.cpu_cores,
        None => cfg.inorder_workers_total.max(1),
    };
    // Per-GPU in-flight window: PyTorch buffers per-rank
    // `workers × prefetch_factor` batches; DALI buffers
    // `prefetch_queue_depth` per pipeline.
    let window_per_gpu = match dali {
        Some(d) => d.queue_depth.max(1),
        None => ((n_workers * cfg.prefetch) / cfg.n_gpus).max(1),
    };

    // --- Plan: shuffled multi-epoch ticket stream chunked into batches,
    // batches sharded round-robin over GPUs (DDP-style) and assigned
    // round-robin to workers. ---
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tickets: Vec<usize> = Vec::with_capacity(total_samples);
    while tickets.len() < total_samples {
        let mut epoch: Vec<usize> = (0..dataset_len).collect();
        epoch.shuffle(&mut rng);
        tickets.extend(epoch);
    }
    tickets.truncate(total_samples);
    let plan: Vec<Vec<usize>> = tickets.chunks(wl.batch_size).map(|c| c.to_vec()).collect();
    let slow_threshold = crate::slow_threshold_ms(wl);

    // --- Resources. ---
    let mut cpu = ServerPool::new(cfg.cpu_cores, cfg.bucket);
    let mut storage = Storage::new(cfg.storage_bandwidth_bps, cfg.memory_bytes, cfg.bucket);
    let mut gpus: Vec<Gpu> = (0..cfg.n_gpus).map(|_| Gpu::new(cfg.bucket)).collect();
    let mut trained = CounterSeries::new(cfg.bucket);

    // --- Pipeline state. ---
    let mut workers: Vec<Worker> = (0..n_workers)
        .map(|_| Worker {
            queue: VecDeque::new(),
            current: None,
        })
        .collect();
    for b in 0..plan.len() {
        workers[b % n_workers].queue.push_back(b);
    }
    let mut gpu_state: Vec<GpuState> = (0..cfg.n_gpus)
        .map(|_| GpuState {
            reorder: ReorderBuffer::new(0),
            ready: VecDeque::new(),
            consumed: 0,
            busy: false,
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<(SimTime, u64, Ev)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut batch_slow_counts = Vec::new();
    let mut batch_end_times = Vec::new();
    let mut batches_trained = 0usize;
    let mut samples_trained = 0usize;
    let mut last_step_end = SimTime::ZERO;

    macro_rules! push_ev {
        ($t:expr, $e:expr) => {{
            seq += 1;
            heap.push(Reverse(($t, seq, $e)));
        }};
    }

    // Begins preprocessing of worker `w`'s current batch's next sample.
    let start_sample = |now: SimTime,
                        w: usize,
                        workers: &mut Vec<Worker>,
                        storage: &mut Storage,
                        cpu: &mut ServerPool,
                        gpus: &mut Vec<Gpu>|
     -> Option<(SimTime, Ev)> {
        let cur = workers[w].current.as_mut()?;
        let sample_id = plan[cur.batch_idx][cur.next_sample];
        let profile = wl.sample_profile(sample_id % wl.n_samples);
        let read = storage.read(now, sample_id as u64, profile.raw_bytes);
        let cost_ms = profile.total_ms * (1.0 - cfg.pecan_gain).clamp(0.0, 1.0);
        let end = match dali {
            Some(d) => {
                // Deeper prefetch queues keep a larger preprocessing
                // working set resident on the device; the resulting
                // memory/cache pressure slows the kernels (the §3.4
                // observation that higher depth "can interfere with
                // training computations").
                let pressure = 1.0 + 0.015 * d.queue_depth.saturating_sub(2) as f64;
                let dur = SimDuration::from_ms_f64(cost_ms / d.speedup.max(1e-9) * pressure);
                gpus[cur.gpu].preprocess(read.ready_at, dur).1
            }
            None => {
                let dur = SimDuration::from_ms_f64(cost_ms);
                cpu.submit(read.ready_at, dur).1
            }
        };
        cur.stats.bytes += profile.raw_bytes;
        cur.stats.len += 1;
        if profile.total_ms > slow_threshold {
            cur.stats.slow += 1;
        }
        Some((end, Ev::SampleDone { worker: w }))
    };

    macro_rules! try_start_worker {
        ($now:expr, $w:expr) => {{
            let can = {
                let wk = &workers[$w];
                match (wk.current.is_none(), wk.queue.front()) {
                    (true, Some(&b)) => {
                        let g = b % cfg.n_gpus;
                        let local = b / cfg.n_gpus;
                        local < gpu_state[g].consumed + window_per_gpu
                    }
                    _ => false,
                }
            };
            let popped = if can {
                workers[$w].queue.pop_front()
            } else {
                None
            };
            if let Some(b) = popped {
                workers[$w].current = Some(CurBatch {
                    batch_idx: b,
                    gpu: b % cfg.n_gpus,
                    local_idx: b / cfg.n_gpus,
                    next_sample: 0,
                    stats: BatchStats {
                        bytes: 0,
                        slow: 0,
                        len: 0,
                    },
                });
                if let Some((t, ev)) =
                    start_sample($now, $w, &mut workers, &mut storage, &mut cpu, &mut gpus)
                {
                    push_ev!(t, ev);
                }
            }
        }};
    }

    macro_rules! try_step {
        ($now:expr, $g:expr) => {{
            if !gpu_state[$g].busy {
                if let Some((ready_at, stats)) = gpu_state[$g].ready.pop_front() {
                    gpu_state[$g].busy = true;
                    gpu_state[$g].consumed += 1;
                    // A window slot freed: any worker may start.
                    for w in 0..n_workers {
                        try_start_worker!($now, w);
                    }
                    let begin = ready_at.max($now);
                    let (_s, e) = gpus[$g].train(begin, step);
                    batch_slow_counts.push(stats.slow);
                    samples_trained += stats.len;
                    trained.add(e, stats.bytes as f64);
                    batch_end_times.push(e.as_secs_f64());
                    batches_trained += 1;
                    last_step_end = last_step_end.max(e);
                    push_ev!(e, Ev::StepDone { gpu: $g });
                }
            }
        }};
    }

    for w in 0..n_workers {
        try_start_worker!(SimTime::ZERO, w);
    }

    while let Some(Reverse((now, _, ev))) = heap.pop() {
        match ev {
            Ev::SampleDone { worker: w } => {
                let finished = match workers[w].current.as_mut() {
                    Some(cur) => {
                        cur.next_sample += 1;
                        cur.next_sample >= plan[cur.batch_idx].len()
                    }
                    // No batch in flight: a stale event, nothing to do.
                    None => false,
                };
                if let Some(cur) = finished.then(|| workers[w].current.take()).flatten() {
                    let g = cur.gpu;
                    for stats in gpu_state[g].reorder.push(cur.local_idx as u64, cur.stats) {
                        gpu_state[g].ready.push_back((now, stats));
                    }
                    try_step!(now, g);
                    try_start_worker!(now, w);
                } else if let Some((t, ev)) =
                    start_sample(now, w, &mut workers, &mut storage, &mut cpu, &mut gpus)
                {
                    push_ev!(t, ev);
                }
            }
            Ev::StepDone { gpu: g } => {
                gpu_state[g].busy = false;
                try_step!(now, g);
                for w in 0..n_workers {
                    try_start_worker!(now, w);
                }
            }
        }
    }

    // --- Memory hazards (analytic, Figure 4). ---
    let avg_pre = (0..64.min(wl.n_samples))
        .map(|i| wl.sample_profile(i).preprocessed_bytes as f64)
        .sum::<f64>()
        / 64.min(wl.n_samples) as f64;
    let host_buffer = (cfg.n_gpus * window_per_gpu * wl.batch_size) as f64 * avg_pre;
    let gpu_buffer = dali
        .map(|d| (d.queue_depth * wl.batch_size) as f64 * avg_pre)
        .unwrap_or(0.0);

    let elapsed = last_step_end;
    let train_busy: f64 = gpus.iter().map(|g| g.train_busy().total()).sum();
    let pre_busy: f64 = gpus.iter().map(|g| g.preproc_busy().total()).sum();
    let gpu_cap = elapsed.as_secs_f64().max(1e-9) * cfg.n_gpus as f64;
    let cpu_cap = elapsed.as_secs_f64().max(1e-9) * cfg.cpu_cores as f64;

    // Merge per-GPU busy series into one averaged utilization trace.
    let mut gpu_total = crate::busy::IntervalAccumulator::new(cfg.bucket);
    for g in &gpus {
        for acc in [g.train_busy(), g.preproc_busy()] {
            let t = acc.to_utilization_series("x", 1);
            for (i, &v) in t.values().iter().enumerate() {
                let start = SimTime::from_secs_f64(t.times()[i]);
                gpu_total.add_weighted(
                    start,
                    start + cfg.bucket,
                    v / 100.0 * cfg.bucket.as_secs_f64(),
                );
            }
        }
    }

    let throughput_series = {
        let ts = trained.to_rate_series("bps");
        let mut out = minato_metrics::TimeSeries::new("throughput_mbps");
        for (i, &v) in ts.values().iter().enumerate() {
            out.push(ts.times()[i], v / 1e6);
        }
        out
    };

    SimReport {
        name: name.to_string(),
        train_time_s: elapsed.as_secs_f64(),
        gpu_util_pct: ((train_busy + pre_busy) / gpu_cap * 100.0).min(100.0),
        gpu_train_pct: (train_busy / gpu_cap * 100.0).min(100.0),
        cpu_util_pct: (cpu.busy().total() / cpu_cap * 100.0).min(100.0),
        gpu_series: gpu_total.to_utilization_series("gpu_pct", cfg.n_gpus),
        cpu_series: cpu.busy().to_utilization_series("cpu_pct", cfg.cpu_cores),
        disk_series: storage.disk_read().to_rate_series("disk_bps"),
        throughput_series,
        batches: batches_trained,
        samples: samples_trained,
        slow_flagged: 0,
        batch_slow_counts,
        batch_end_times,
        host_oom: host_buffer > cfg.ram_bytes as f64,
        gpu_oom: gpu_buffer > cfg.gpu_memory_bytes as f64,
        bytes_from_disk: storage.bytes_from_disk(),
        bytes_from_cache: storage.bytes_from_cache(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minato_data::WorkloadSpec;

    fn small_cfg() -> SimConfig {
        let mut c = SimConfig::config_a(WorkloadSpec::object_detection());
        c.max_batches = 40;
        c
    }

    #[test]
    fn trains_all_planned_batches() {
        let cfg = small_cfg();
        let r = simulate_inorder("pytorch", &cfg, None);
        assert_eq!(r.batches, 40);
        assert_eq!(r.samples, 40 * 48);
        assert!(r.train_time_s > 0.0);
        assert_eq!(r.batch_slow_counts.len(), 40);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = small_cfg();
        let a = simulate_inorder("pytorch", &cfg, None);
        let b = simulate_inorder("pytorch", &cfg, None);
        assert_eq!(a.train_time_s, b.train_time_s);
        assert_eq!(a.batch_slow_counts, b.batch_slow_counts);
    }

    #[test]
    fn batch_end_times_bounded_by_train_time() {
        let cfg = small_cfg();
        let r = simulate_inorder("pytorch", &cfg, None);
        assert!(r
            .batch_end_times
            .iter()
            .all(|&t| t > 0.0 && t <= r.train_time_s + 1e-9));
    }

    #[test]
    fn dali_runs_and_uses_gpu_for_preprocessing() {
        let cfg = small_cfg();
        let r = simulate_inorder(
            "dali",
            &cfg,
            Some(DaliSimCfg {
                speedup: 10.0,
                queue_depth: 2,
            }),
        );
        assert_eq!(r.batches, 40);
        assert!(r.gpu_util_pct > r.gpu_train_pct);
    }

    #[test]
    fn pytorch_underutilizes_gpu_on_heavy_preprocessing() {
        // Figure 1b: with 12 total workers and heavy per-sample costs the
        // GPU starves.
        let mut cfg = SimConfig::config_a(WorkloadSpec::image_segmentation());
        cfg.max_batches = 200;
        let r = simulate_inorder("pytorch", &cfg, None);
        assert!(
            (30.0..75.0).contains(&r.gpu_util_pct),
            "expected starved GPU, got {:.1}%",
            r.gpu_util_pct
        );
    }

    #[test]
    fn pecan_gain_speeds_up_cpu_loader() {
        let mut cfg = SimConfig::config_a(WorkloadSpec::speech(3.0));
        cfg.max_batches = 30;
        let base = simulate_inorder("pytorch", &cfg, None);
        cfg.pecan_gain = 0.5; // Exaggerated gain to make the effect clear.
        let pecan = simulate_inorder("pecan", &cfg, None);
        assert!(
            pecan.train_time_s < base.train_time_s,
            "pecan {} vs pytorch {}",
            pecan.train_time_s,
            base.train_time_s
        );
    }

    #[test]
    fn more_gpus_train_faster() {
        let mut cfg = SimConfig::config_a(WorkloadSpec::image_segmentation());
        cfg.max_batches = 60;
        cfg.n_gpus = 1;
        let one = simulate_inorder("pytorch", &cfg, None);
        cfg.n_gpus = 4;
        let four = simulate_inorder("pytorch", &cfg, None);
        assert!(
            four.train_time_s < one.train_time_s,
            "4 GPU {} vs 1 GPU {}",
            four.train_time_s,
            one.train_time_s
        );
    }

    #[test]
    fn huge_prefetch_flags_host_oom() {
        let mut cfg = small_cfg();
        cfg.ram_bytes = 1_000_000; // 1 MB of RAM.
        cfg.prefetch = 48;
        let r = simulate_inorder("pytorch", &cfg, None);
        assert!(r.host_oom);
    }

    #[test]
    fn dali_queue_depth_inflates_gpu_memory() {
        let mut cfg = small_cfg();
        cfg.gpu_memory_bytes = 10_000_000; // 10 MB GPU.
        let r = simulate_inorder(
            "dali",
            &cfg,
            Some(DaliSimCfg {
                speedup: 10.0,
                queue_depth: 24,
            }),
        );
        assert!(r.gpu_oom);
    }
}
