//! MinatoLoader simulation policy (§4) and the size-heuristic strawman
//! (§3.2 / Figure 3a).
//!
//! Faithfully models the runtime of Figure 5 in virtual time:
//!
//! * loader workers claim samples individually (no pre-formed batches),
//! * a per-sample timeout (P75 of profiled times after a warm-up,
//!   refreshed continuously) classifies samples fast/slow,
//! * timed-out samples release their worker after `t_out` of foreground
//!   work and finish on background slow-task workers, re-executing the
//!   interrupted transform (Algorithm 1),
//! * batches form from whichever samples are ready first and feed the
//!   least-occupied per-GPU batch queue,
//! * the adaptive scheduler resizes the foreground pool every second per
//!   Formulas 1–2.
//!
//! The same engine with [`ClassifyMode::BySize`] reproduces the image-size
//! heuristic: classification happens *at admission* from the raw size and
//! there is no timeout rescue, so a mispredicted slow sample occupies a
//! foreground worker for its entire cost — the failure mode of Figure 3a.

use crate::busy::{CounterSeries, IntervalAccumulator};
use crate::config::SimConfig;
use crate::report::SimReport;
use crate::resources::{Gpu, ServerPool, SimQueue, Storage};
use crate::time::{SimDuration, SimTime};
use minato_metrics::Reservoir;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// How samples are classified fast/slow.
#[derive(Debug, Clone, Copy)]
pub enum ClassifyMode {
    /// MinatoLoader: runtime timeout at the configured percentile.
    Timeout,
    /// §3.2 heuristic: predicted slow when raw size exceeds the P75 of
    /// sizes (computed from the first profiled samples). No timeout.
    BySize,
    /// No classification at all (ablation: every sample is foreground).
    None,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A foreground sample finished preprocessing (fast path).
    FgDone { slow: bool, bytes_milli: u64 },
    /// A foreground sample hit the timeout; its remaining work moves to
    /// the background pool.
    FgTimedOut { sample: usize },
    /// A background sample finished preprocessing.
    BgDone { bytes_milli: u64 },
    /// GPU finished a training step.
    StepDone { gpu: usize },
    /// Worker-scheduler monitor tick.
    Monitor,
}

#[derive(Debug, Clone, Default)]
struct PendingBatch {
    len: usize,
    slow: usize,
    bytes: u64,
}

/// Runs one simulated training with MinatoLoader semantics.
pub fn simulate_minato(name: &str, cfg: &SimConfig, mode: ClassifyMode) -> SimReport {
    let wl = &cfg.workload;
    let dataset_len = cfg.dataset_len();
    let total_samples = cfg.total_samples();
    let total_batches = cfg.total_batches();
    let step = SimDuration::from_ms_f64(wl.gpu_step_ms(cfg.arch));
    let slow_threshold = crate::slow_threshold_ms(wl);

    // Ticket stream: shuffled per epoch, like the loaders request data.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tickets: Vec<usize> = Vec::with_capacity(total_samples);
    while tickets.len() < total_samples {
        let mut epoch: Vec<usize> = (0..dataset_len).collect();
        epoch.shuffle(&mut rng);
        tickets.extend(epoch);
    }
    tickets.truncate(total_samples);

    // Size-heuristic threshold: P75 of the first 512 sample sizes.
    let size_threshold = {
        let mut sizes: Vec<f64> = (0..512.min(wl.n_samples))
            .map(|i| wl.sample_profile(i).raw_bytes as f64)
            .collect();
        sizes.sort_by(f64::total_cmp);
        minato_metrics::quantile_sorted(&sizes, 0.75).unwrap_or(f64::MAX)
    };

    // Resources. The slow-task (background) pool starts at the paper's
    // per-GPU default but is scaled by the monitor alongside the
    // foreground pool — §4.3 includes slow-task workers in the CPU
    // workers the scheduler adjusts.
    let bg_min = (cfg.minato.slow_workers_per_gpu * cfg.n_gpus).max(1);
    let bg_max = (cfg.cpu_cores / 2).max(bg_min);
    let mut bg_capacity = bg_min;
    let mut max_fg = cfg.cpu_cores.saturating_sub(bg_capacity).max(1);
    let mut fg_capacity = (cfg.workers_per_gpu * cfg.n_gpus).min(max_fg);
    let mut fg_active = 0usize;
    let mut fg_busy = IntervalAccumulator::new(cfg.bucket);
    let mut bg_pool = ServerPool::new(bg_capacity, cfg.bucket);
    let _ = bg_capacity; // Tracked through `bg_pool.capacity()` below.
    let mut storage = Storage::new(cfg.storage_bandwidth_bps, cfg.memory_bytes, cfg.bucket);
    let mut gpus: Vec<Gpu> = (0..cfg.n_gpus).map(|_| Gpu::new(cfg.bucket)).collect();
    let mut queues: Vec<SimQueue<PendingBatch>> = (0..cfg.n_gpus)
        .map(|_| SimQueue::new(cfg.prefetch))
        .collect();
    let mut overflow: VecDeque<(SimTime, PendingBatch)> = VecDeque::new();
    let mut gpu_busy_flag = vec![false; cfg.n_gpus];
    let mut trained = CounterSeries::new(cfg.bucket);

    // Profiler + timeout.
    let mut profiler = Reservoir::new(4096);
    let mut tout_ms: Option<f64> = None;

    // Progress.
    let mut next_ticket = 0usize;
    let mut pending = PendingBatch::default();
    let mut in_flight_bg = 0usize;
    let mut batches_trained = 0usize;
    let mut samples_trained = 0usize;
    let mut slow_flagged = 0usize;
    let mut batch_slow_counts = Vec::new();
    let mut batch_end_times = Vec::new();
    let mut last_step_end = SimTime::ZERO;
    let mut samples_ready = 0usize;

    let mut heap: BinaryHeap<Reverse<(SimTime, u64, Ev)>> = BinaryHeap::new();
    let mut seq = 0u64;
    macro_rules! push_ev {
        ($t:expr, $e:expr) => {{
            seq += 1;
            heap.push(Reverse(($t, seq, $e)));
        }};
    }

    // Whether more claims may start (backpressure: bounded ready pool +
    // bounded assembled-batch overflow).
    macro_rules! can_claim {
        () => {
            next_ticket < total_samples
                && pending.len < cfg.minato.ready_pool_cap
                && overflow.len() < 8
        };
    }

    macro_rules! try_claim {
        ($now:expr) => {{
            while fg_active < fg_capacity && can_claim!() {
                let sample = tickets[next_ticket];
                next_ticket += 1;
                fg_active += 1;
                let profile = wl.sample_profile(sample % wl.n_samples);
                let read = storage.read($now, sample as u64, profile.raw_bytes);
                // In Timeout mode a sample is predicted slow exactly when
                // its total cost exceeds the configured timeout; carry that
                // timeout with the verdict so the deferral arm below never
                // has to re-unwrap the option.
                let slow_timeout = match mode {
                    ClassifyMode::Timeout => tout_ms.filter(|&t| profile.total_ms > t),
                    _ => None,
                };
                let is_predicted_slow = match mode {
                    ClassifyMode::Timeout => slow_timeout.is_some(),
                    ClassifyMode::BySize => (profile.raw_bytes as f64) > size_threshold,
                    ClassifyMode::None => false,
                };
                match (mode, is_predicted_slow, slow_timeout) {
                    (ClassifyMode::Timeout, true, Some(t)) => {
                        // Foreground burns exactly t_out, then defers.
                        let start = read.ready_at;
                        let end = start + SimDuration::from_ms_f64(t);
                        fg_busy.add(start, end);
                        push_ev!(end, Ev::FgTimedOut { sample });
                    }
                    (ClassifyMode::BySize, true, _) => {
                        // Admission-time routing: the whole sample runs in
                        // background.
                        in_flight_bg += 1;
                        fg_active -= 1; // Never occupied a fg worker.
                        let dur = SimDuration::from_ms_f64(profile.total_ms);
                        let (_s, e) = bg_pool.submit(read.ready_at, dur);
                        push_ev!(
                            e,
                            Ev::BgDone {
                                bytes_milli: profile.raw_bytes
                            }
                        );
                    }
                    _ => {
                        // Foreground runs the full cost.
                        let start = read.ready_at;
                        let end = start + SimDuration::from_ms_f64(profile.total_ms);
                        fg_busy.add(start, end);
                        push_ev!(
                            end,
                            Ev::FgDone {
                                slow: profile.total_ms > slow_threshold,
                                bytes_milli: profile.raw_bytes
                            }
                        );
                        profiler.record(profile.total_ms);
                    }
                }
                if matches!(mode, ClassifyMode::Timeout) && is_predicted_slow {
                    profiler.record(profile.total_ms);
                }
            }
        }};
    }

    // Assemble-and-dispatch helpers.
    macro_rules! try_step {
        ($now:expr, $g:expr) => {{
            if !gpu_busy_flag[$g] {
                if let Some((ready_at, stats)) = queues[$g].pop() {
                    gpu_busy_flag[$g] = true;
                    // Refill from overflow.
                    if let Some((t, b)) = overflow.pop_front() {
                        queues[$g].push(t, b);
                    }
                    let begin = ready_at.max($now);
                    let (_s, e) = gpus[$g].train(begin, step);
                    batch_slow_counts.push(stats.slow);
                    samples_trained += stats.len;
                    trained.add(e, stats.bytes as f64);
                    batch_end_times.push(e.as_secs_f64());
                    batches_trained += 1;
                    last_step_end = last_step_end.max(e);
                    push_ev!(e, Ev::StepDone { gpu: $g });
                }
            }
        }};
    }

    macro_rules! on_sample_ready {
        ($now:expr, $slow:expr, $bytes:expr) => {{
            samples_ready += 1;
            pending.len += 1;
            pending.bytes += $bytes;
            if $slow {
                pending.slow += 1;
            }
            let flush =
                pending.len >= wl.batch_size || (samples_ready == total_samples && pending.len > 0);
            if flush {
                let batch = std::mem::take(&mut pending);
                // Least-occupied, non-full queue; else overflow.
                let target = (0..cfg.n_gpus)
                    .filter(|&g| !queues[g].is_full())
                    .min_by_key(|&g| queues[g].len());
                match target {
                    Some(g) => {
                        queues[g].push($now, batch);
                        try_step!($now, g);
                    }
                    None => overflow.push_back(($now, batch)),
                }
            }
        }};
    }

    // Prime the pipeline.
    try_claim!(SimTime::ZERO);
    if cfg.minato.adaptive || matches!(mode, ClassifyMode::Timeout) {
        push_ev!(SimTime::from_secs_f64(1.0), Ev::Monitor);
    }

    while let Some(Reverse((now, _, ev))) = heap.pop() {
        match ev {
            Ev::FgDone { slow, bytes_milli } => {
                fg_active -= 1;
                if slow {
                    // Ground-truth slow sample that was *not* rescued (no
                    // timeout yet, or BySize misprediction): not flagged,
                    // it silently delayed the foreground.
                }
                on_sample_ready!(now, slow, bytes_milli);
                // Initialize the timeout as soon as warm-up completes.
                if matches!(mode, ClassifyMode::Timeout)
                    && tout_ms.is_none()
                    && profiler.len() >= cfg.minato.warmup_samples
                {
                    tout_ms = profiler.quantile(cfg.minato.timeout_percentile);
                }
                try_claim!(now);
            }
            Ev::FgTimedOut { sample } => {
                fg_active -= 1;
                slow_flagged += 1;
                let profile = wl.sample_profile(sample % wl.n_samples);
                // Resume from the interrupted transform: completed steps
                // are not redone, the interrupted one is (Algorithm 1).
                let t = tout_ms.unwrap_or(0.0);
                let mut done_before = 0.0;
                let mut cum = 0.0;
                for &s in &profile.per_step_ms {
                    if cum + s <= t {
                        cum += s;
                        done_before = cum;
                    } else {
                        break;
                    }
                }
                let remaining = (profile.total_ms - done_before).max(0.0);
                in_flight_bg += 1;
                let (_s, e) = bg_pool.submit(now, SimDuration::from_ms_f64(remaining));
                push_ev!(
                    e,
                    Ev::BgDone {
                        bytes_milli: profile.raw_bytes
                    }
                );
                try_claim!(now);
            }
            Ev::BgDone { bytes_milli } => {
                in_flight_bg -= 1;
                on_sample_ready!(now, true, bytes_milli);
                if matches!(mode, ClassifyMode::BySize) {
                    slow_flagged += 1;
                }
                try_claim!(now);
            }
            Ev::StepDone { gpu: g } => {
                gpu_busy_flag[g] = false;
                try_step!(now, g);
                try_claim!(now);
            }
            Ev::Monitor => {
                if batches_trained >= total_batches {
                    continue; // Training done; stop rescheduling.
                }
                if matches!(mode, ClassifyMode::Timeout) {
                    // Continuous refresh (workload drift, §4.2), with the
                    // P90 fallback when too many samples flag slow.
                    if profiler.len() >= cfg.minato.warmup_samples {
                        let p = profiler.quantile(cfg.minato.timeout_percentile);
                        if let Some(p) = p {
                            let would_flag = profiler.fraction_above(p);
                            tout_ms = if would_flag > 0.35 {
                                profiler.quantile(0.90)
                            } else {
                                Some(p)
                            };
                        }
                    }
                }
                if cfg.minato.adaptive {
                    // Slow-task pool first: size it to its backlog (the
                    // temp-queue depth), bounded to half the machine.
                    bg_capacity = in_flight_bg.clamp(bg_min, bg_max);
                    bg_pool.resize(now, bg_capacity);
                    max_fg = cfg.cpu_cores.saturating_sub(bg_capacity).max(1);
                    if !cfg.minato.adaptive_fg {
                        fg_capacity = fg_capacity.min(max_fg);
                        try_claim!(now);
                        push_ev!(now + SimDuration::from_secs_f64(1.0), Ev::Monitor);
                        continue;
                    }
                    // Foreground pool per Formulas 1–2.
                    let window = SimDuration::from_secs_f64(1.0);
                    let cap = window.as_secs_f64() * fg_capacity as f64;
                    let busy = fg_busy.busy_seconds_between(now.saturating_sub_dur(window), now);
                    let cpu_usage = (busy / cap.max(1e-9)).clamp(0.0, 1.0);
                    let q_len: usize = queues.iter().map(|q| q.len()).sum();
                    let q_cap: usize = queues.iter().map(|q| q.capacity()).sum();
                    let q_term = 1.0 - (q_len as f64 / q_cap.max(1) as f64).clamp(0.0, 1.0);
                    let delta = (2.0 * q_term + 2.0 * (cpu_usage - 0.7)).round() as i64;
                    let delta = delta.clamp(-2, 2);
                    let next = (fg_capacity as i64 + delta).max(1) as usize;
                    fg_capacity = next.min(max_fg);
                    try_claim!(now);
                }
                push_ev!(now + SimDuration::from_secs_f64(1.0), Ev::Monitor);
            }
        }
    }

    let elapsed = last_step_end;
    let train_busy: f64 = gpus.iter().map(|g| g.train_busy().total()).sum();
    let gpu_cap = elapsed.as_secs_f64().max(1e-9) * cfg.n_gpus as f64;
    let cpu_cap = elapsed.as_secs_f64().max(1e-9) * cfg.cpu_cores as f64;
    let cpu_busy_total = fg_busy.total() + bg_pool.busy().total();

    // Build the averaged GPU utilization trace.
    let mut gpu_total = IntervalAccumulator::new(cfg.bucket);
    for g in &gpus {
        let t = g.train_busy().to_utilization_series("t", 1);
        for (i, &v) in t.values().iter().enumerate() {
            let start = SimTime::from_secs_f64(t.times()[i]);
            gpu_total.add_weighted(
                start,
                start + cfg.bucket,
                v / 100.0 * cfg.bucket.as_secs_f64(),
            );
        }
    }
    let mut cpu_total = fg_busy.clone();
    let bg_series = bg_pool.busy().to_utilization_series("b", 1);
    for (i, &v) in bg_series.values().iter().enumerate() {
        let start = SimTime::from_secs_f64(bg_series.times()[i]);
        cpu_total.add_weighted(
            start,
            start + cfg.bucket,
            v / 100.0 * cfg.bucket.as_secs_f64(),
        );
    }

    let throughput_series = {
        let ts = trained.to_rate_series("bps");
        let mut out = minato_metrics::TimeSeries::new("throughput_mbps");
        for (i, &v) in ts.values().iter().enumerate() {
            out.push(ts.times()[i], v / 1e6);
        }
        out
    };

    SimReport {
        name: name.to_string(),
        train_time_s: elapsed.as_secs_f64(),
        gpu_util_pct: (train_busy / gpu_cap * 100.0).min(100.0),
        gpu_train_pct: (train_busy / gpu_cap * 100.0).min(100.0),
        cpu_util_pct: (cpu_busy_total / cpu_cap * 100.0).min(100.0),
        gpu_series: gpu_total.to_utilization_series("gpu_pct", cfg.n_gpus),
        cpu_series: cpu_total.to_utilization_series("cpu_pct", cfg.cpu_cores),
        disk_series: storage.disk_read().to_rate_series("disk_bps"),
        throughput_series,
        batches: batches_trained,
        samples: samples_trained,
        slow_flagged,
        batch_slow_counts,
        batch_end_times,
        host_oom: false,
        gpu_oom: false,
        bytes_from_disk: storage.bytes_from_disk(),
        bytes_from_cache: storage.bytes_from_cache(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::inorder::simulate_inorder;
    use minato_data::WorkloadSpec;

    fn small(workload: WorkloadSpec, batches: usize) -> SimConfig {
        let mut c = SimConfig::config_a(workload);
        c.max_batches = batches;
        c
    }

    #[test]
    fn trains_all_batches() {
        let cfg = small(WorkloadSpec::object_detection(), 40);
        let r = simulate_minato("minato", &cfg, ClassifyMode::Timeout);
        assert_eq!(r.batches, 40);
        assert_eq!(r.samples, 40 * 48);
    }

    #[test]
    fn deterministic() {
        let cfg = small(WorkloadSpec::speech(3.0), 20);
        let a = simulate_minato("minato", &cfg, ClassifyMode::Timeout);
        let b = simulate_minato("minato", &cfg, ClassifyMode::Timeout);
        assert_eq!(a.train_time_s, b.train_time_s);
        assert_eq!(a.slow_flagged, b.slow_flagged);
    }

    #[test]
    fn timeout_flags_heavy_speech_samples() {
        let cfg = small(WorkloadSpec::speech(3.0), 60);
        let r = simulate_minato("minato", &cfg, ClassifyMode::Timeout);
        // ~20% of samples are heavy; after warm-up most should be caught.
        let trained = r.samples as f64;
        let frac = r.slow_flagged as f64 / trained;
        assert!(
            (0.10..=0.30).contains(&frac),
            "slow fraction {frac} out of range"
        );
    }

    #[test]
    fn minato_beats_pytorch_on_speech() {
        // The headline result, in miniature: heavy per-sample variability
        // → Minato's classification wins by a large factor.
        let cfg = small(WorkloadSpec::speech(3.0), 50);
        let minato = simulate_minato("minato", &cfg, ClassifyMode::Timeout);
        let pytorch = simulate_inorder("pytorch", &cfg, None);
        assert!(
            minato.train_time_s < pytorch.train_time_s / 1.5,
            "minato {:.1}s vs pytorch {:.1}s",
            minato.train_time_s,
            pytorch.train_time_s
        );
    }

    #[test]
    fn minato_gpu_utilization_higher_than_pytorch() {
        let cfg = small(WorkloadSpec::image_segmentation(), 100);
        let minato = simulate_minato("minato", &cfg, ClassifyMode::Timeout);
        let pytorch = simulate_inorder("pytorch", &cfg, None);
        assert!(
            minato.gpu_util_pct > pytorch.gpu_util_pct,
            "minato {:.1}% vs pytorch {:.1}%",
            minato.gpu_util_pct,
            pytorch.gpu_util_pct
        );
    }

    #[test]
    fn adaptive_scaling_helps_when_underprovisioned() {
        let mut cfg = small(WorkloadSpec::image_segmentation(), 80);
        cfg.workers_per_gpu = 4; // Deliberately too few.
        let mut fixed = cfg.clone();
        fixed.minato.adaptive = false;
        let adaptive = simulate_minato("adaptive", &cfg, ClassifyMode::Timeout);
        let frozen = simulate_minato("fixed", &fixed, ClassifyMode::Timeout);
        assert!(
            adaptive.train_time_s <= frozen.train_time_s,
            "adaptive {:.1}s vs fixed {:.1}s",
            adaptive.train_time_s,
            frozen.train_time_s
        );
    }

    #[test]
    fn batch_composition_mixes_slow_samples() {
        let cfg = small(WorkloadSpec::speech(3.0), 60);
        let r = simulate_minato("minato", &cfg, ClassifyMode::Timeout);
        // Slow samples must appear *throughout* training, not bunch at
        // the end (§4.1): check some slow sample lands in the first half
        // of batches.
        let half = r.batch_slow_counts.len() / 2;
        let early_slow: usize = r.batch_slow_counts[..half].iter().sum();
        assert!(early_slow > 0, "slow samples deferred to the end");
    }

    #[test]
    fn size_heuristic_runs() {
        let cfg = small(WorkloadSpec::object_detection(), 40);
        let r = simulate_minato("heuristic", &cfg, ClassifyMode::BySize);
        assert_eq!(r.batches, 40);
        assert!(r.slow_flagged > 0, "some samples predicted slow by size");
    }

    #[test]
    fn classify_none_is_plain_pooling() {
        let cfg = small(WorkloadSpec::object_detection(), 20);
        let r = simulate_minato("none", &cfg, ClassifyMode::None);
        assert_eq!(r.batches, 20);
        assert_eq!(r.slow_flagged, 0);
    }
}
