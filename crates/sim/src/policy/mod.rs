//! Loader policies as simulation processes.

pub mod inorder;
pub mod minato;

pub use inorder::simulate_inorder;
pub use minato::{simulate_minato, ClassifyMode};
