//! Simulation results in the shape the paper reports them.

use minato_metrics::TimeSeries;

/// Outcome of one simulated training run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Loader/policy name.
    pub name: String,
    /// End-to-end training time in (virtual) seconds.
    pub train_time_s: f64,
    /// Average GPU utilization (%) over the run. For CPU-side loaders
    /// this is training occupancy; for DALI it includes preprocessing.
    pub gpu_util_pct: f64,
    /// Average GPU utilization spent on *training only* (%).
    pub gpu_train_pct: f64,
    /// Average preprocessing-CPU utilization (%).
    pub cpu_util_pct: f64,
    /// Per-second GPU utilization trace.
    pub gpu_series: TimeSeries,
    /// Per-second CPU utilization trace.
    pub cpu_series: TimeSeries,
    /// Per-second disk-read throughput (bytes/s).
    pub disk_series: TimeSeries,
    /// Per-second trained-data throughput (MB/s, raw sample bytes).
    pub throughput_series: TimeSeries,
    /// Batches trained.
    pub batches: usize,
    /// Samples trained.
    pub samples: usize,
    /// Samples classified slow (0 for baselines without classification).
    pub slow_flagged: usize,
    /// Per-batch count of slow samples (Figure 11b/c); slow is defined by
    /// the same P75 ground-truth threshold for every loader so
    /// compositions are comparable.
    pub batch_slow_counts: Vec<usize>,
    /// Completion time (s) of each batch, aligned with
    /// `batch_slow_counts`.
    pub batch_end_times: Vec<f64>,
    /// Whether buffering exceeded host RAM (Figure 4a's OOM hazard).
    pub host_oom: bool,
    /// Whether buffering exceeded GPU memory (Figure 4b's hazard).
    pub gpu_oom: bool,
    /// Bytes read from disk (vs served from page cache).
    pub bytes_from_disk: u64,
    /// Bytes served from the page cache.
    pub bytes_from_cache: u64,
}

impl SimReport {
    /// Average trained-data throughput over the whole run, MB/s.
    pub fn avg_throughput_mbps(&self) -> f64 {
        self.throughput_series.mean()
    }

    /// Distribution of batches by number of slow samples, normalized
    /// (Figure 11b): index `i` = fraction of batches containing exactly
    /// `i` slow samples, up to `max_slow`.
    pub fn batch_slow_distribution(&self, max_slow: usize) -> Vec<f64> {
        let mut counts = vec![0usize; max_slow + 1];
        for &c in &self.batch_slow_counts {
            counts[c.min(max_slow)] += 1;
        }
        let total = self.batch_slow_counts.len().max(1) as f64;
        counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Mean fraction of slow samples per batch (Figure 11c's dashed
    /// line), given the batch size.
    pub fn mean_slow_proportion(&self, batch_size: usize) -> f64 {
        if self.batch_slow_counts.is_empty() || batch_size == 0 {
            return 0.0;
        }
        self.batch_slow_counts
            .iter()
            .map(|&c| c as f64 / batch_size as f64)
            .sum::<f64>()
            / self.batch_slow_counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> SimReport {
        SimReport {
            name: "x".into(),
            train_time_s: 0.0,
            gpu_util_pct: 0.0,
            gpu_train_pct: 0.0,
            cpu_util_pct: 0.0,
            gpu_series: TimeSeries::new("g"),
            cpu_series: TimeSeries::new("c"),
            disk_series: TimeSeries::new("d"),
            throughput_series: TimeSeries::new("t"),
            batches: 0,
            samples: 0,
            slow_flagged: 0,
            batch_slow_counts: vec![],
            batch_end_times: vec![],
            host_oom: false,
            gpu_oom: false,
            bytes_from_disk: 0,
            bytes_from_cache: 0,
        }
    }

    #[test]
    fn slow_distribution_normalizes() {
        let mut r = blank();
        r.batch_slow_counts = vec![0, 0, 1, 2, 9];
        let d = r.batch_slow_distribution(4);
        assert!((d[0] - 0.4).abs() < 1e-9);
        assert!((d[1] - 0.2).abs() < 1e-9);
        assert!((d[2] - 0.2).abs() < 1e-9);
        assert!((d[4] - 0.2).abs() < 1e-9, "overflow folded into last bin");
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_slow_proportion_basic() {
        let mut r = blank();
        r.batch_slow_counts = vec![0, 2, 2];
        assert!((r.mean_slow_proportion(4) - (0.0 + 0.5 + 0.5) / 3.0).abs() < 1e-9);
        assert_eq!(blank().mean_slow_proportion(4), 0.0);
    }
}
