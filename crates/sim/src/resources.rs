//! Simulated hardware resources: CPU worker pools, GPUs, storage with a
//! page cache.
//!
//! All resources use *service-time* semantics: a task submitted at `now`
//! is assigned a start time (when a server/the device frees up) and an end
//! time, both returned to the caller, and the busy interval is recorded
//! for utilization reporting. This is exact for FIFO disciplines, which is
//! how the real systems behave (queue per device, in-order DMA, etc.).

use crate::busy::IntervalAccumulator;
use crate::time::{SimDuration, SimTime};
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// A pool of identical FIFO servers (CPU preprocessing workers).
///
/// Capacity can change at runtime (the adaptive worker scheduler of
/// §4.3): growing adds servers free immediately; shrinking retires the
/// servers with the latest free times (they finish their current task
/// first).
#[derive(Debug)]
pub struct ServerPool {
    /// Free-at time per active server (unordered).
    free_at: Vec<SimTime>,
    busy: IntervalAccumulator,
}

impl ServerPool {
    /// Creates a pool of `n` servers, all free at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, bucket: SimDuration) -> ServerPool {
        assert!(n > 0, "pool needs at least one server");
        ServerPool {
            free_at: vec![SimTime::ZERO; n],
            busy: IntervalAccumulator::new(bucket),
        }
    }

    /// Current number of servers.
    pub fn capacity(&self) -> usize {
        self.free_at.len()
    }

    /// Submits a task of `dur` at `now`; returns `(start, end)`.
    pub fn submit(&mut self, now: SimTime, dur: SimDuration) -> (SimTime, SimTime) {
        // Argmin over free times; the pool is never empty (`new`
        // asserts, `resize` clamps), so index 0 always exists.
        let mut idx = 0;
        for (i, t) in self.free_at.iter().enumerate().skip(1) {
            if *t < self.free_at[idx] {
                idx = i;
            }
        }
        let start = self.free_at[idx].max(now);
        let end = start + dur;
        self.free_at[idx] = end;
        self.busy.add(start, end);
        (start, end)
    }

    /// Earliest time any server is free (≥ `now`).
    pub fn earliest_free(&self, now: SimTime) -> SimTime {
        self.free_at
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO)
            .max(now)
    }

    /// Changes the pool size to `target` (≥ 1). Growing servers become
    /// free at `now`.
    pub fn resize(&mut self, now: SimTime, target: usize) {
        let target = target.max(1);
        while self.free_at.len() < target {
            self.free_at.push(now);
        }
        while self.free_at.len() > target {
            // Retire the server that frees last (argmax; the loop guard
            // keeps the vec non-empty).
            let mut idx = 0;
            for (i, t) in self.free_at.iter().enumerate().skip(1) {
                if *t > self.free_at[idx] {
                    idx = i;
                }
            }
            self.free_at.swap_remove(idx);
        }
    }

    /// Utilization accumulator (busy worker-seconds per bucket).
    pub fn busy(&self) -> &IntervalAccumulator {
        &self.busy
    }

    /// Fraction of the last-`window` bucket capacity that was busy, for
    /// the scheduler's `Cusage` input.
    pub fn recent_utilization(&self, now: SimTime, window: SimDuration) -> f64 {
        let cap = window.as_secs_f64() * self.capacity() as f64;
        if cap <= 0.0 {
            return 0.0;
        }
        (self
            .busy
            .busy_seconds_between(now.saturating_sub_dur(window), now)
            / cap)
            .clamp(0.0, 1.0)
    }
}

/// One GPU: a single FIFO timeline shared by training steps and (under
/// DALI) preprocessing kernels.
#[derive(Debug)]
pub struct Gpu {
    free_at: SimTime,
    train_busy: IntervalAccumulator,
    preproc_busy: IntervalAccumulator,
}

impl Gpu {
    /// Creates an idle GPU.
    pub fn new(bucket: SimDuration) -> Gpu {
        Gpu {
            free_at: SimTime::ZERO,
            train_busy: IntervalAccumulator::new(bucket),
            preproc_busy: IntervalAccumulator::new(bucket),
        }
    }

    /// Schedules a training step at `now`; returns `(start, end)`.
    pub fn train(&mut self, now: SimTime, dur: SimDuration) -> (SimTime, SimTime) {
        let start = self.free_at.max(now);
        let end = start + dur;
        self.free_at = end;
        self.train_busy.add(start, end);
        (start, end)
    }

    /// Schedules preprocessing work (DALI) at `now`; returns
    /// `(start, end)`.
    pub fn preprocess(&mut self, now: SimTime, dur: SimDuration) -> (SimTime, SimTime) {
        let start = self.free_at.max(now);
        let end = start + dur;
        self.free_at = end;
        self.preproc_busy.add(start, end);
        (start, end)
    }

    /// When the GPU next frees up (≥ `now`).
    pub fn free_at(&self, now: SimTime) -> SimTime {
        self.free_at.max(now)
    }

    /// Training busy intervals.
    pub fn train_busy(&self) -> &IntervalAccumulator {
        &self.train_busy
    }

    /// Preprocessing busy intervals.
    pub fn preproc_busy(&self) -> &IntervalAccumulator {
        &self.preproc_busy
    }
}

/// Result of a storage read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// When the data is available.
    pub ready_at: SimTime,
    /// Whether it came from the page cache.
    pub cache_hit: bool,
}

/// Backing storage with finite bandwidth and an LRU page cache.
///
/// Reads are serialized FIFO at `bandwidth` (a good model for both a
/// saturated Lustre link and a local NVMe). Cache hits cost a DRAM copy at
/// `cache_bandwidth`. The cache capacity models the paper's cgroup memory
/// limit (§5.5).
#[derive(Debug)]
pub struct Storage {
    bandwidth_bps: f64,
    cache_bandwidth_bps: f64,
    free_at: SimTime,
    cache_capacity: u64,
    cache_used: u64,
    /// id → (bytes, last-use tick).
    cache: HashMap<u64, (u64, u64)>,
    /// Lazy LRU heap of (Reverse(tick), id).
    lru: BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    tick: u64,
    disk_read: IntervalAccumulator,
    bytes_from_disk: u64,
    bytes_from_cache: u64,
}

impl Storage {
    /// Creates storage with `bandwidth_bps` disk bandwidth and an LRU
    /// cache of `cache_capacity` bytes.
    pub fn new(bandwidth_bps: f64, cache_capacity: u64, bucket: SimDuration) -> Storage {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        Storage {
            bandwidth_bps,
            cache_bandwidth_bps: 20e9, // DRAM-copy speed.
            free_at: SimTime::ZERO,
            cache_capacity,
            cache_used: 0,
            cache: HashMap::new(),
            lru: BinaryHeap::new(),
            tick: 0,
            disk_read: IntervalAccumulator::new(bucket),
            bytes_from_disk: 0,
            bytes_from_cache: 0,
        }
    }

    /// Reads sample `id` (`bytes` long) at `now`.
    pub fn read(&mut self, now: SimTime, id: u64, bytes: u64) -> ReadResult {
        self.tick += 1;
        if let Some(entry) = self.cache.get_mut(&id) {
            entry.1 = self.tick;
            self.lru.push(std::cmp::Reverse((self.tick, id)));
            self.bytes_from_cache += bytes;
            let dur = SimDuration::from_secs_f64(bytes as f64 / self.cache_bandwidth_bps);
            return ReadResult {
                ready_at: now + dur,
                cache_hit: true,
            };
        }
        // Miss: FIFO through the disk.
        let dur = SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps);
        let start = self.free_at.max(now);
        let end = start + dur;
        self.free_at = end;
        self.disk_read.add_weighted(start, end, bytes as f64);
        self.bytes_from_disk += bytes;
        self.insert_cache(id, bytes);
        ReadResult {
            ready_at: end,
            cache_hit: false,
        }
    }

    fn insert_cache(&mut self, id: u64, bytes: u64) {
        if bytes > self.cache_capacity {
            return; // Larger than the whole cache: never cached.
        }
        while self.cache_used + bytes > self.cache_capacity {
            match self.lru.pop() {
                Some(std::cmp::Reverse((tick, victim))) => {
                    // Lazy entry: only evict if this is the *current* tick
                    // for the victim.
                    if let Some(&(vbytes, vtick)) = self.cache.get(&victim) {
                        if vtick == tick {
                            self.cache.remove(&victim);
                            self.cache_used -= vbytes;
                        }
                    }
                }
                None => return, // Nothing to evict (shouldn't happen).
            }
        }
        self.cache.insert(id, (bytes, self.tick));
        self.lru.push(std::cmp::Reverse((self.tick, id)));
        self.cache_used += bytes;
    }

    /// Bytes currently cached.
    pub fn cache_used(&self) -> u64 {
        self.cache_used
    }

    /// Bytes served from disk so far.
    pub fn bytes_from_disk(&self) -> u64 {
        self.bytes_from_disk
    }

    /// Bytes served from cache so far.
    pub fn bytes_from_cache(&self) -> u64 {
        self.bytes_from_cache
    }

    /// Disk-read byte-weighted intervals (for GB/s traces, Figure 10).
    pub fn disk_read(&self) -> &IntervalAccumulator {
        &self.disk_read
    }
}

/// A bounded FIFO of ready items with occupancy history — the simulated
/// batch queue.
#[derive(Debug)]
pub struct SimQueue<T> {
    items: VecDeque<(SimTime, T)>,
    capacity: usize,
}

impl<T> SimQueue<T> {
    /// Creates a queue with `capacity` slots.
    pub fn new(capacity: usize) -> SimQueue<T> {
        SimQueue {
            items: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Capacity in items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes an item that became ready at `at`.
    pub fn push(&mut self, at: SimTime, item: T) {
        self.items.push_back((at, item));
    }

    /// Pops the oldest item, returning `(ready_at, item)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.items.pop_front()
    }

    /// Ready time of the oldest item.
    pub fn front_ready_at(&self) -> Option<SimTime> {
        self.items.front().map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: SimDuration = SimDuration(1_000_000_000);

    #[test]
    fn pool_serves_fifo_across_servers() {
        let mut p = ServerPool::new(2, B);
        let d = SimDuration::from_secs_f64(1.0);
        let (s1, e1) = p.submit(SimTime::ZERO, d);
        let (s2, e2) = p.submit(SimTime::ZERO, d);
        let (s3, _e3) = p.submit(SimTime::ZERO, d);
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(s2, SimTime::ZERO);
        // Third task waits for the earliest of e1/e2.
        assert_eq!(s3, e1.min(e2));
    }

    #[test]
    fn pool_resize_grows_and_shrinks() {
        let mut p = ServerPool::new(1, B);
        let d = SimDuration::from_secs_f64(10.0);
        let _ = p.submit(SimTime::ZERO, d);
        p.resize(SimTime::from_secs_f64(1.0), 3);
        assert_eq!(p.capacity(), 3);
        // New server free at resize time, so next task starts at 1s.
        let (s, _) = p.submit(SimTime::from_secs_f64(1.0), d);
        assert_eq!(s, SimTime::from_secs_f64(1.0));
        p.resize(SimTime::from_secs_f64(1.0), 1);
        assert_eq!(p.capacity(), 1);
    }

    #[test]
    fn pool_utilization_window() {
        let mut p = ServerPool::new(1, B);
        p.submit(SimTime::ZERO, SimDuration::from_secs_f64(0.5));
        let u = p.recent_utilization(SimTime::from_secs_f64(1.0), SimDuration::from_secs_f64(1.0));
        assert!((u - 0.5).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn gpu_serializes_train_and_preprocess() {
        let mut g = Gpu::new(B);
        let (_, e1) = g.train(SimTime::ZERO, SimDuration::from_secs_f64(1.0));
        let (s2, e2) = g.preprocess(SimTime::ZERO, SimDuration::from_secs_f64(0.5));
        assert_eq!(s2, e1, "preprocess waits for training");
        assert_eq!(g.free_at(SimTime::ZERO), e2);
    }

    #[test]
    fn storage_miss_then_hit() {
        let mut s = Storage::new(1e9, 1_000_000, B);
        let r1 = s.read(SimTime::ZERO, 7, 500_000);
        assert!(!r1.cache_hit);
        assert!((r1.ready_at.as_secs_f64() - 0.0005).abs() < 1e-9);
        let r2 = s.read(r1.ready_at, 7, 500_000);
        assert!(r2.cache_hit);
        assert!(r2.ready_at < r1.ready_at + SimDuration::from_secs_f64(0.0005));
        assert_eq!(s.bytes_from_disk(), 500_000);
        assert_eq!(s.bytes_from_cache(), 500_000);
    }

    #[test]
    fn storage_lru_evicts_oldest() {
        let mut s = Storage::new(1e9, 1_000, B);
        let _ = s.read(SimTime::ZERO, 1, 600);
        let _ = s.read(SimTime::ZERO, 2, 600); // Evicts 1.
        assert!(s.cache_used() <= 1_000);
        let r = s.read(SimTime::ZERO, 1, 600); // 1 was evicted: miss.
        assert!(!r.cache_hit);
        let r = s.read(SimTime::ZERO, 1, 600); // Now cached again.
        assert!(r.cache_hit);
    }

    #[test]
    fn storage_serializes_reads() {
        let mut s = Storage::new(1e6, 0, B); // 1 MB/s, no cache.
        let r1 = s.read(SimTime::ZERO, 1, 1_000_000); // 1s.
        let r2 = s.read(SimTime::ZERO, 2, 1_000_000); // Queued behind.
        assert!((r1.ready_at.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((r2.ready_at.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_object_not_cached() {
        let mut s = Storage::new(1e9, 100, B);
        let _ = s.read(SimTime::ZERO, 1, 500);
        let r = s.read(SimTime::ZERO, 1, 500);
        assert!(!r.cache_hit);
        assert_eq!(s.cache_used(), 0);
    }

    #[test]
    fn sim_queue_fifo_and_capacity() {
        let mut q = SimQueue::new(2);
        q.push(SimTime(1), 'a');
        q.push(SimTime(2), 'b');
        assert!(q.is_full());
        assert_eq!(q.front_ready_at(), Some(SimTime(1)));
        assert_eq!(q.pop(), Some((SimTime(1), 'a')));
        assert_eq!(q.len(), 1);
    }
}
