//! Virtual time for the discrete-event simulator.

use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and overflow-checked in debug builds; a
/// full paper-scale run (hours of virtual time) sits far below `u64::MAX`
/// nanoseconds (~584 years).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from seconds.
    pub fn from_secs_f64(s: f64) -> SimTime {
        SimTime((s.max(0.0) * 1e9) as u64)
    }

    /// Builds a time from milliseconds.
    pub fn from_ms_f64(ms: f64) -> SimTime {
        SimTime((ms.max(0.0) * 1e6) as u64)
    }

    /// This time in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time in milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Saturating subtraction of a span.
    pub fn saturating_sub_dur(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from seconds.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s.max(0.0) * 1e9) as u64)
    }

    /// Builds a span from milliseconds.
    pub fn from_ms_f64(ms: f64) -> SimDuration {
        SimDuration((ms.max(0.0) * 1e6) as u64)
    }

    /// This span in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This span in milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the span by `f` (clamped non-negative).
    pub fn mul_f64(self, f: f64) -> SimDuration {
        SimDuration((self.0 as f64 * f.max(0.0)) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_ms_f64() - 1500.0).abs() < 1e-9);
        let d = SimDuration::from_ms_f64(2.5);
        assert_eq!(d.0, 2_500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(1.0) + SimDuration::from_secs_f64(0.5);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        let d = SimTime::from_secs_f64(2.0) - SimTime::from_secs_f64(0.5);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        // Saturating: earlier minus later is zero.
        let z = SimTime::from_secs_f64(1.0) - SimTime::from_secs_f64(2.0);
        assert_eq!(z, SimDuration::ZERO);
    }

    #[test]
    fn negative_inputs_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_ms_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration(10).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime(5).max(SimTime(3)), SimTime(5));
    }
}
