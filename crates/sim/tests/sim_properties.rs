//! Property-based tests over the simulator's invariants.

use minato_data::WorkloadSpec;
use minato_sim::{simulate_inorder, simulate_minato, ClassifyMode, DaliSimCfg, SimConfig};
use proptest::prelude::*;

fn workload_for(idx: u8) -> WorkloadSpec {
    match idx % 4 {
        0 => WorkloadSpec::image_segmentation(),
        1 => WorkloadSpec::object_detection(),
        2 => WorkloadSpec::speech(3.0),
        _ => WorkloadSpec::speech(10.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every policy trains exactly the planned number of batches and
    /// samples, for arbitrary small configurations.
    #[test]
    fn conservation_of_samples(
        wl_idx in 0u8..4,
        n_gpus in 1usize..5,
        batches in 2usize..20,
        seed in 0u64..1000,
    ) {
        let mut cfg = SimConfig::config_a(workload_for(wl_idx));
        cfg.n_gpus = n_gpus;
        cfg.max_batches = batches;
        cfg.seed = seed;
        let expected_samples = cfg.total_samples();
        for report in [
            simulate_inorder("pytorch", &cfg, None),
            simulate_inorder("dali", &cfg, Some(DaliSimCfg { speedup: 10.0, queue_depth: 2 })),
            simulate_minato("minato", &cfg, ClassifyMode::Timeout),
            simulate_minato("heuristic", &cfg, ClassifyMode::BySize),
        ] {
            prop_assert_eq!(report.batches, batches, "{}", report.name);
            prop_assert_eq!(report.samples, expected_samples, "{}", report.name);
            prop_assert_eq!(report.batch_slow_counts.len(), batches);
            prop_assert!(report.train_time_s > 0.0);
        }
    }

    /// Utilization percentages are always within [0, 100], and batch end
    /// times never exceed the reported training time.
    #[test]
    fn report_sanity(
        wl_idx in 0u8..4,
        batches in 2usize..16,
    ) {
        let mut cfg = SimConfig::config_b(workload_for(wl_idx));
        cfg.max_batches = batches;
        let r = simulate_minato("minato", &cfg, ClassifyMode::Timeout);
        prop_assert!((0.0..=100.0).contains(&r.gpu_util_pct));
        prop_assert!((0.0..=100.0).contains(&r.cpu_util_pct));
        prop_assert!(r.batch_end_times.iter().all(|&t| t <= r.train_time_s + 1e-6));
        prop_assert!(r.gpu_series.values().iter().all(|&v| (0.0..=100.0).contains(&v)));
    }

    /// Weak monotonicity: more GPUs never make training *slower* (they may
    /// saturate at the CPU/storage bound).
    #[test]
    fn gpus_weakly_help(
        wl_idx in 0u8..4,
        batches in 4usize..16,
    ) {
        let mk = |n: usize| {
            let mut cfg = SimConfig::config_a(workload_for(wl_idx));
            cfg.n_gpus = n;
            cfg.max_batches = batches;
            cfg
        };
        let one = simulate_inorder("pytorch", &mk(1), None).train_time_s;
        let four = simulate_inorder("pytorch", &mk(4), None).train_time_s;
        // 10% slack: a partial final wave of batches can cost one step.
        prop_assert!(four <= one * 1.10, "1 gpu {one}, 4 gpus {four}");
    }

    /// Determinism: identical configs produce identical reports, across
    /// all policies.
    #[test]
    fn runs_are_deterministic(
        wl_idx in 0u8..4,
        seed in 0u64..1000,
    ) {
        let mut cfg = SimConfig::config_a(workload_for(wl_idx));
        cfg.max_batches = 8;
        cfg.seed = seed;
        let a = simulate_minato("m", &cfg, ClassifyMode::Timeout);
        let b = simulate_minato("m", &cfg, ClassifyMode::Timeout);
        prop_assert_eq!(a.train_time_s, b.train_time_s);
        prop_assert_eq!(a.batch_slow_counts, b.batch_slow_counts);
        prop_assert_eq!(a.slow_flagged, b.slow_flagged);
        let c = simulate_inorder("p", &cfg, None);
        let d = simulate_inorder("p", &cfg, None);
        prop_assert_eq!(c.train_time_s, d.train_time_s);
    }

    /// The page cache never serves more bytes from disk than a cacheless
    /// run would, and cache+disk bytes cover all reads.
    #[test]
    fn cache_only_reduces_disk_traffic(batches in 4usize..16) {
        let mut with_cache = SimConfig::config_b(WorkloadSpec::image_segmentation());
        with_cache.max_batches = batches;
        let mut no_cache = with_cache.clone();
        no_cache.memory_bytes = 0;
        let a = simulate_minato("cached", &with_cache, ClassifyMode::Timeout);
        let b = simulate_minato("uncached", &no_cache, ClassifyMode::Timeout);
        prop_assert!(a.bytes_from_disk <= b.bytes_from_disk);
        prop_assert_eq!(b.bytes_from_cache, 0);
        prop_assert_eq!(
            a.bytes_from_disk + a.bytes_from_cache,
            b.bytes_from_disk,
            "total bytes read must match"
        );
    }
}
