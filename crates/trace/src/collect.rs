//! Folding raw events into per-stage latency histograms.
//!
//! The collector is the single consumer of every worker ring. It runs
//! off the hot path (the loader's monitor thread, or `stats()` /
//! `export` calls) and is free to allocate. It folds events into
//! [`LogHistogram`]s:
//!
//! * pipeline step runtimes, from `StageEnd` durations, one histogram
//!   per step index,
//! * queue-wait times, by pairing each `QueuePut` with its `QueuePop`
//!   on `(queue id, seq)`,
//! * slow-path resume runtimes, from `SlowResume` durations,
//! * end-to-end ticket→delivery latency, from `Delivered` durations,
//!
//! and optionally retains a bounded window of raw events for the
//! Perfetto exporter.

use crate::event::{Event, EventKind, KIND_COUNT};
use crate::tracer::Tracer;
use minato_metrics::LogHistogram;
use std::collections::HashMap;

/// Latency distribution of one named stage, in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct StageLatency {
    /// Stage label (pipeline step name, `<queue>_wait`, `slow_resume`,
    /// or `ticket_to_delivery`).
    pub stage: String,
    /// Observations folded into this stage.
    pub count: u64,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
}

/// Where a sample's time goes: per-stage quantiles plus the end-to-end
/// ticket→delivery distribution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyBreakdown {
    /// One row per pipeline step, queue wait, and the slow-resume stage
    /// (stages that saw no events are omitted).
    pub stages: Vec<StageLatency>,
    /// Ticket issue → consumer pop, when any sample was delivered.
    pub end_to_end: Option<StageLatency>,
}

impl LatencyBreakdown {
    /// Looks up a stage row by label.
    pub fn stage(&self, name: &str) -> Option<&StageLatency> {
        self.stages.iter().find(|s| s.stage == name)
    }
}

fn stage_row(name: &str, h: &LogHistogram) -> StageLatency {
    const MS: f64 = 1e6;
    StageLatency {
        stage: name.to_string(),
        count: h.count(),
        p50_ms: h.quantile(0.50).unwrap_or(0.0) / MS,
        p95_ms: h.quantile(0.95).unwrap_or(0.0) / MS,
        p99_ms: h.quantile(0.99).unwrap_or(0.0) / MS,
    }
}

/// Bound on outstanding put→pop pairings; beyond it new puts are
/// counted in [`Collector::unpaired`] instead of growing without limit.
const PENDING_CAP: usize = 1 << 16;

/// Single-consumer event folder. See the [module docs](self).
#[derive(Debug)]
pub struct Collector {
    stage_names: Vec<String>,
    queue_names: Vec<String>,
    stage_hist: Vec<LogHistogram>,
    queue_hist: Vec<LogHistogram>,
    resume_hist: LogHistogram,
    e2e_hist: LogHistogram,
    pending: HashMap<(u32, u64), u64>,
    unpaired: u64,
    kind_counts: [u64; KIND_COUNT],
    events_folded: u64,
    export: Vec<Event>,
    export_cap: usize,
    export_dropped: u64,
}

impl Collector {
    /// Creates a collector. `stage_names` label pipeline step indices,
    /// `queue_names` label queue ids; unknown indices get generated
    /// labels. `export_cap` bounds the raw events retained for the
    /// Perfetto exporter (0 disables retention).
    pub fn new(stage_names: Vec<String>, queue_names: Vec<String>, export_cap: usize) -> Collector {
        Collector {
            stage_names,
            queue_names,
            stage_hist: Vec::new(),
            queue_hist: Vec::new(),
            resume_hist: LogHistogram::new(),
            e2e_hist: LogHistogram::new(),
            pending: HashMap::new(),
            unpaired: 0,
            kind_counts: [0; KIND_COUNT],
            events_folded: 0,
            export: Vec::new(),
            export_cap,
            export_dropped: 0,
        }
    }

    /// Label for pipeline step `idx`.
    pub fn stage_name(&self, idx: usize) -> String {
        self.stage_names
            .get(idx)
            .cloned()
            .unwrap_or_else(|| format!("step{idx}"))
    }

    /// Label for queue id `idx`.
    pub fn queue_name(&self, idx: usize) -> String {
        self.queue_names
            .get(idx)
            .cloned()
            .unwrap_or_else(|| format!("queue{idx}"))
    }

    /// Folds one event into the histograms (and the export window).
    pub fn fold(&mut self, ev: Event) {
        self.events_folded += 1;
        self.kind_counts[ev.kind as usize] += 1;
        if self.export_cap > 0 {
            if self.export.len() < self.export_cap {
                self.export.push(ev);
            } else {
                self.export_dropped += 1;
            }
        }
        match ev.kind {
            EventKind::StageEnd => {
                let idx = ev.arg as usize;
                if idx >= self.stage_hist.len() {
                    self.stage_hist.resize(idx + 1, LogHistogram::new());
                }
                self.stage_hist[idx].record(ev.dur_ns);
            }
            EventKind::SlowResume => self.resume_hist.record(ev.dur_ns),
            EventKind::Delivered => self.e2e_hist.record(ev.dur_ns),
            EventKind::QueuePut => {
                if self.pending.len() < PENDING_CAP {
                    self.pending.insert((ev.arg, ev.seq), ev.ts_ns);
                } else {
                    self.unpaired += 1;
                }
            }
            EventKind::QueuePop => match self.pending.remove(&(ev.arg, ev.seq)) {
                Some(put_ts) => {
                    let idx = ev.arg as usize;
                    if idx >= self.queue_hist.len() {
                        self.queue_hist.resize(idx + 1, LogHistogram::new());
                    }
                    self.queue_hist[idx].record(ev.ts_ns.saturating_sub(put_ts));
                }
                None => self.unpaired += 1,
            },
            _ => {}
        }
    }

    /// Drains every ring of `tracer` into the histograms. Returns how
    /// many events were folded by this call.
    pub fn drain(&mut self, tracer: &Tracer) -> u64 {
        let before = self.events_folded;
        for ring in tracer.rings() {
            while let Some(words) = ring.pop() {
                if let Some(ev) = Event::unpack(words) {
                    self.fold(ev);
                }
            }
        }
        self.events_folded - before
    }

    /// Builds the per-stage latency breakdown from everything folded so
    /// far.
    pub fn breakdown(&self) -> LatencyBreakdown {
        let mut stages = Vec::new();
        for (i, h) in self.stage_hist.iter().enumerate() {
            if !h.is_empty() {
                stages.push(stage_row(&self.stage_name(i), h));
            }
        }
        for (i, h) in self.queue_hist.iter().enumerate() {
            if !h.is_empty() {
                stages.push(stage_row(&format!("{}_wait", self.queue_name(i)), h));
            }
        }
        if !self.resume_hist.is_empty() {
            stages.push(stage_row("slow_resume", &self.resume_hist));
        }
        let end_to_end =
            (!self.e2e_hist.is_empty()).then(|| stage_row("ticket_to_delivery", &self.e2e_hist));
        LatencyBreakdown { stages, end_to_end }
    }

    /// Per-kind event counts folded so far (indexed by
    /// [`EventKind`] discriminant).
    pub fn kind_counts(&self) -> &[u64; KIND_COUNT] {
        &self.kind_counts
    }

    /// Count of one kind.
    pub fn count_of(&self, kind: EventKind) -> u64 {
        self.kind_counts[kind as usize]
    }

    /// Total events folded.
    pub fn events_folded(&self) -> u64 {
        self.events_folded
    }

    /// `QueuePut`s that never found space in the pairing map plus
    /// `QueuePop`s whose put was lost (e.g. ring overflow).
    pub fn unpaired(&self) -> u64 {
        self.unpaired
    }

    /// The retained raw events (bounded by `export_cap`).
    pub fn events(&self) -> &[Event] {
        &self.export
    }

    /// Events that did not fit the export window.
    pub fn export_dropped(&self) -> u64 {
        self.export_dropped
    }

    /// Renders the retained events as a Chrome/Perfetto `trace.json`
    /// string.
    pub fn export_chrome_trace(&self) -> String {
        crate::export::chrome_trace(&self.export, &self.stage_names, &self.queue_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, ts: u64, seq: u64, arg: u32, dur: u64) -> Event {
        Event {
            ts_ns: ts,
            kind,
            worker: 0,
            epoch: 0,
            arg,
            seq,
            dur_ns: dur,
        }
    }

    fn collector() -> Collector {
        Collector::new(
            vec!["decode".into(), "augment".into()],
            vec!["fast_q".into(), "slow_q".into()],
            1024,
        )
    }

    #[test]
    fn stage_ends_feed_per_step_histograms() {
        let mut c = collector();
        for i in 0..10 {
            c.fold(ev(EventKind::StageEnd, i * 100, i, 0, 1_000_000));
            c.fold(ev(EventKind::StageEnd, i * 100, i, 1, 4_000_000));
        }
        let b = c.breakdown();
        let decode = b.stage("decode").expect("decode row");
        let augment = b.stage("augment").expect("augment row");
        assert_eq!(decode.count, 10);
        assert!((0.5..2.1).contains(&decode.p50_ms), "{}", decode.p50_ms);
        assert!(augment.p50_ms > decode.p50_ms);
    }

    #[test]
    fn queue_waits_pair_put_with_pop() {
        let mut c = collector();
        c.fold(ev(EventKind::QueuePut, 1_000, 7, 0, 0));
        c.fold(ev(EventKind::QueuePop, 2_001_000, 7, 0, 0));
        let b = c.breakdown();
        let wait = b.stage("fast_q_wait").expect("fast_q_wait row");
        assert_eq!(wait.count, 1);
        assert!((1.0..4.1).contains(&wait.p50_ms), "{}", wait.p50_ms);
        assert_eq!(c.unpaired(), 0);
    }

    #[test]
    fn orphan_pop_counts_unpaired() {
        let mut c = collector();
        c.fold(ev(EventKind::QueuePop, 500, 9, 0, 0));
        assert_eq!(c.unpaired(), 1);
        assert!(c.breakdown().stage("fast_q_wait").is_none());
    }

    #[test]
    fn delivered_builds_end_to_end_row() {
        let mut c = collector();
        assert!(c.breakdown().end_to_end.is_none());
        for seq in 0..5 {
            c.fold(ev(EventKind::Delivered, 1_000_000, seq, 0, 8_000_000));
        }
        let e2e = c.breakdown().end_to_end.expect("e2e row");
        assert_eq!(e2e.stage, "ticket_to_delivery");
        assert_eq!(e2e.count, 5);
        assert!((4.0..16.1).contains(&e2e.p99_ms), "{}", e2e.p99_ms);
    }

    #[test]
    fn export_window_is_bounded() {
        let mut c = Collector::new(Vec::new(), Vec::new(), 4);
        for i in 0..10 {
            c.fold(ev(EventKind::CacheHit, i, i, 0, 0));
        }
        assert_eq!(c.events().len(), 4);
        assert_eq!(c.export_dropped(), 6);
        assert_eq!(c.count_of(EventKind::CacheHit), 10);
        assert_eq!(c.events_folded(), 10);
    }

    #[test]
    fn unknown_indices_get_generated_labels() {
        let mut c = Collector::new(Vec::new(), Vec::new(), 0);
        c.fold(ev(EventKind::StageEnd, 0, 0, 3, 100));
        c.fold(ev(EventKind::QueuePut, 0, 1, 2, 0));
        c.fold(ev(EventKind::QueuePop, 10, 1, 2, 0));
        let b = c.breakdown();
        assert!(b.stage("step3").is_some());
        assert!(b.stage("queue2_wait").is_some());
    }
}
