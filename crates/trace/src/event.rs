//! Typed lifecycle events and their fixed 4-word wire encoding.
//!
//! Every event is packed into exactly four `u64` words so the SPSC rings
//! can store them in plain atomic slots with no allocation and no
//! variable-length framing:
//!
//! | word | contents                                              |
//! |------|-------------------------------------------------------|
//! | 0    | monotonic timestamp, nanoseconds since tracer origin  |
//! | 1    | `kind` (u8) \| `worker` (u8) \| `epoch` (u16) \| `arg` (u32) |
//! | 2    | sample sequence number (`seq`)                        |
//! | 3    | duration in nanoseconds (0 for instant events)        |
//!
//! `arg` is the kind-specific payload: the pipeline step index for
//! `StageStart`/`StageEnd`, the queue id for `QueuePut`/`QueuePop`, the
//! GPU index for `BatchEmit`/`Delivered`, and the role id for
//! `RoleSwitch`.

/// Number of distinct [`EventKind`] discriminants.
pub const KIND_COUNT: usize = 18;

/// What happened to a sample (or worker) at one instant of its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A ticket was claimed from the sampler; the sample's life begins.
    TicketClaimed = 0,
    /// A pipeline step began executing (`arg` = step index).
    StageStart = 1,
    /// A pipeline step finished (`arg` = step index, `dur_ns` = runtime).
    StageEnd = 2,
    /// The cross-epoch cache served the sample without running the
    /// pipeline.
    CacheHit = 3,
    /// The cross-epoch cache was consulted and missed.
    CacheMiss = 4,
    /// The sample was enqueued (`arg` = queue id).
    QueuePut = 5,
    /// The sample was dequeued (`arg` = queue id).
    QueuePop = 6,
    /// The sample exceeded the balancer timeout and was deferred to the
    /// slow path.
    SlowDefer = 7,
    /// A deferred sample finished its background completion
    /// (`dur_ns` = resume runtime).
    SlowResume = 8,
    /// A batch was sealed and published (`arg` = GPU index).
    BatchEmit = 9,
    /// The consumer popped the sample inside a batch
    /// (`dur_ns` = ticket-issue → delivery latency, `arg` = GPU index).
    Delivered = 10,
    /// An elastic executor worker re-bid onto a different role
    /// (`arg` = role id).
    RoleSwitch = 11,
    /// An injected or organic fault fired while processing the sample.
    FaultHit = 12,
    /// A buffer-pool acquire was served from pooled memory.
    PoolHit = 13,
    /// A buffer-pool acquire fell through to a fresh allocation.
    PoolMiss = 14,
    /// A tenant was admitted to a shared executor pool
    /// (`arg` = tenant id).
    TenantAdmit = 15,
    /// A wedged or expired tenant was evicted by the lease watchdog
    /// (`arg` = tenant id).
    TenantEvict = 16,
    /// A departed tenant's role budgets and queue slots were reclaimed
    /// (`arg` = tenant id).
    BudgetReclaim = 17,
}

impl EventKind {
    /// All kinds, indexable by discriminant.
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::TicketClaimed,
        EventKind::StageStart,
        EventKind::StageEnd,
        EventKind::CacheHit,
        EventKind::CacheMiss,
        EventKind::QueuePut,
        EventKind::QueuePop,
        EventKind::SlowDefer,
        EventKind::SlowResume,
        EventKind::BatchEmit,
        EventKind::Delivered,
        EventKind::RoleSwitch,
        EventKind::FaultHit,
        EventKind::PoolHit,
        EventKind::PoolMiss,
        EventKind::TenantAdmit,
        EventKind::TenantEvict,
        EventKind::BudgetReclaim,
    ];

    /// Decodes a discriminant byte; `None` for out-of-range values
    /// (a corrupted ring slot must not panic the collector).
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Self::ALL.get(v as usize).copied()
    }

    /// Stable display name (used as the Perfetto span name prefix).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TicketClaimed => "ticket_claimed",
            EventKind::StageStart => "stage_start",
            EventKind::StageEnd => "stage",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::QueuePut => "queue_put",
            EventKind::QueuePop => "queue_pop",
            EventKind::SlowDefer => "slow_defer",
            EventKind::SlowResume => "slow_resume",
            EventKind::BatchEmit => "batch_emit",
            EventKind::Delivered => "delivered",
            EventKind::RoleSwitch => "role_switch",
            EventKind::FaultHit => "fault_hit",
            EventKind::PoolHit => "pool_hit",
            EventKind::PoolMiss => "pool_miss",
            EventKind::TenantAdmit => "tenant_admit",
            EventKind::TenantEvict => "tenant_evict",
            EventKind::BudgetReclaim => "budget_reclaim",
        }
    }
}

/// One decoded lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the tracer's origin instant.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Ring index of the recording thread.
    pub worker: u8,
    /// Epoch of the sample (0 for sample-less events).
    pub epoch: u16,
    /// Kind-specific payload (step index, queue id, GPU, role id).
    pub arg: u32,
    /// Global sample sequence number (0 for sample-less events).
    pub seq: u64,
    /// Duration in nanoseconds; 0 for instant events.
    pub dur_ns: u64,
}

impl Event {
    /// Encodes the event into its 4-word wire form.
    // minato-verify: hot-path
    pub fn pack(&self) -> [u64; 4] {
        let w1 = (self.kind as u64)
            | (u64::from(self.worker) << 8)
            | (u64::from(self.epoch) << 16)
            | (u64::from(self.arg) << 32);
        [self.ts_ns, w1, self.seq, self.dur_ns]
    }

    /// Decodes a 4-word wire form; `None` if the kind byte is invalid.
    pub fn unpack(words: [u64; 4]) -> Option<Event> {
        let kind = EventKind::from_u8((words[1] & 0xFF) as u8)?;
        Some(Event {
            ts_ns: words[0],
            kind,
            worker: ((words[1] >> 8) & 0xFF) as u8,
            epoch: ((words[1] >> 16) & 0xFFFF) as u16,
            arg: (words[1] >> 32) as u32,
            seq: words[2],
            dur_ns: words[3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips_every_kind() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            let ev = Event {
                ts_ns: 123_456_789,
                kind: *kind,
                worker: 7,
                epoch: 3,
                arg: 0xDEAD_BEEF,
                seq: u64::MAX - 5,
                dur_ns: 42,
            };
            assert_eq!(Event::unpack(ev.pack()), Some(ev), "kind #{i}");
        }
    }

    #[test]
    fn invalid_kind_byte_decodes_to_none() {
        assert_eq!(EventKind::from_u8(KIND_COUNT as u8), None);
        assert_eq!(Event::unpack([0, KIND_COUNT as u64, 0, 0]), None);
    }

    #[test]
    fn field_extremes_survive_packing() {
        let ev = Event {
            ts_ns: u64::MAX,
            kind: EventKind::PoolMiss,
            worker: u8::MAX,
            epoch: u16::MAX,
            arg: u32::MAX,
            seq: u64::MAX,
            dur_ns: u64::MAX,
        };
        assert_eq!(Event::unpack(ev.pack()), Some(ev));
    }
}
