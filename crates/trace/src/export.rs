//! Chrome/Perfetto `trace.json` export.
//!
//! Emits the [Trace Event Format] consumed by `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev): a JSON object with a
//! `traceEvents` array of complete (`"ph":"X"`) events. Every span
//! carries `pid`/`tid`/`ts`/`dur`/`name`; duration-bearing events
//! (`stage`, `slow_resume`, `delivered`) become real spans anchored at
//! their start (`ts = end - dur`), instants become zero-duration spans.
//! Timestamps are microseconds, as the format requires.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{Event, EventKind};

/// Escapes a string for embedding inside a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

fn label(ev: &Event, stage_names: &[String], queue_names: &[String], out: &mut String) {
    let base = ev.kind.name();
    match ev.kind {
        EventKind::StageStart | EventKind::StageEnd => {
            escape_into(out, base);
            out.push(':');
            match stage_names.get(ev.arg as usize) {
                Some(n) => escape_into(out, n),
                None => {
                    out.push_str("step");
                    out.push_str(&ev.arg.to_string());
                }
            }
        }
        EventKind::QueuePut | EventKind::QueuePop => {
            escape_into(out, base);
            out.push(':');
            match queue_names.get(ev.arg as usize) {
                Some(n) => escape_into(out, n),
                None => {
                    out.push_str("queue");
                    out.push_str(&ev.arg.to_string());
                }
            }
        }
        EventKind::TenantAdmit | EventKind::TenantEvict | EventKind::BudgetReclaim => {
            // Tenant lifecycle spans: `arg` is the tenant id, so
            // Perfetto groups each tenant's admit/evict/reclaim
            // markers under one searchable label.
            escape_into(out, base);
            out.push_str(":t");
            out.push_str(&ev.arg.to_string());
        }
        _ => escape_into(out, base),
    }
}

/// Renders `events` as a Chrome/Perfetto trace JSON string.
///
/// `stage_names` and `queue_names` label the `arg` indices of stage and
/// queue events; missing labels fall back to `stepN`/`queueN`.
pub fn chrome_trace(events: &[Event], stage_names: &[String], queue_names: &[String]) -> String {
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur_us = ev.dur_ns as f64 / 1_000.0;
        // Anchor duration-bearing events at their start so they render
        // as spans covering the time they actually took.
        let ts_us = ev.ts_ns.saturating_sub(ev.dur_ns) as f64 / 1_000.0;
        out.push_str("{\"pid\":1,\"tid\":");
        out.push_str(&u32::from(ev.worker).to_string());
        out.push_str(",\"ph\":\"X\",\"ts\":");
        out.push_str(&format!("{ts_us:.3}"));
        out.push_str(",\"dur\":");
        out.push_str(&format!("{dur_us:.3}"));
        out.push_str(",\"name\":\"");
        label(ev, stage_names, queue_names, &mut out);
        out.push_str("\",\"args\":{\"seq\":");
        out.push_str(&ev.seq.to_string());
        out.push_str(",\"epoch\":");
        out.push_str(&ev.epoch.to_string());
        out.push_str(",\"arg\":");
        out.push_str(&ev.arg.to_string());
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};

    fn ev(kind: EventKind, ts: u64, dur: u64, arg: u32) -> Event {
        Event {
            ts_ns: ts,
            kind,
            worker: 2,
            epoch: 1,
            arg,
            seq: 42,
            dur_ns: dur,
        }
    }

    #[test]
    fn export_is_valid_json_with_required_span_fields() {
        let events = vec![
            ev(EventKind::TicketClaimed, 1_000, 0, 0),
            ev(EventKind::StageEnd, 900_000, 800_000, 0),
            ev(EventKind::QueuePut, 1_000_000, 0, 1),
            ev(EventKind::Delivered, 5_000_000, 4_900_000, 0),
        ];
        let json = chrome_trace(
            &events,
            &["decode\"weird\\name".to_string()],
            &["fast_q".to_string(), "slow_q".to_string()],
        );
        let v = parse(&json).expect("exporter must emit valid JSON");
        let spans = v
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert_eq!(spans.len(), 4);
        for span in spans {
            for key in ["pid", "tid", "ts", "dur", "name"] {
                assert!(span.get(key).is_some(), "span missing {key}: {span:?}");
            }
        }
        // Duration-bearing event is anchored at start: ts = end - dur.
        let stage = &spans[1];
        let ts = stage.get("ts").and_then(JsonValue::as_f64).expect("ts");
        let dur = stage.get("dur").and_then(JsonValue::as_f64).expect("dur");
        assert!((ts - 100.0).abs() < 1e-9, "ts={ts}");
        assert!((dur - 800.0).abs() < 1e-9, "dur={dur}");
        let name = stage.get("name").and_then(JsonValue::as_str).expect("name");
        assert_eq!(name, "stage:decode\"weird\\name");
    }

    #[test]
    fn empty_event_list_exports_empty_array() {
        let json = chrome_trace(&[], &[], &[]);
        let v = parse(&json).expect("valid JSON");
        let spans = v
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents");
        assert!(spans.is_empty());
    }
}
