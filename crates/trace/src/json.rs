//! A minimal dependency-free JSON parser.
//!
//! The build environment is offline (no `serde`), but the exporter and
//! the `BENCH_*.json` harness need to *validate* what they emit — a
//! trace that Perfetto rejects is worse than no trace. This module
//! parses standard JSON into a [`JsonValue`] tree; it favors clarity
//! over speed and is meant for tests and tooling, not hot paths.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string literal (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order preserved, duplicate keys kept as-is.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse failure: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.to_string(),
            offset: self.pos,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = match self.bump() {
                                Some(d) => d,
                                None => return self.err("truncated \\u escape"),
                            };
                            let v = match (d as char).to_digit(16) {
                                Some(v) => v,
                                None => return self.err("invalid \\u escape digit"),
                            };
                            code = code * 16 + v;
                        }
                        // Surrogates and other invalid scalars map to
                        // the replacement character (validation use
                        // only; lossless round-tripping is not a goal).
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(b) if b < 0x20 => return self.err("raw control character in string"),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from the
                    // original input slice.
                    let start = self.pos - 1;
                    let width = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xF0 => 4,
                        _ if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let end = start + width;
                    if end > self.bytes.len() {
                        return self.err("truncated UTF-8 sequence");
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8 in string"),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(t) => t,
            Err(_) => return self.err("invalid number bytes"),
        };
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Number(n)),
            _ => self.err("invalid number"),
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(JsonValue::Array(items)),
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.value()?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(JsonValue::Object(members)),
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after document");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x\ny"}"#)
            .expect("valid document");
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.as_array())
                .and_then(|a| a[2].as_f64()),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("d"))
                .and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(v.get("e").and_then(JsonValue::as_str), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn resolves_escapes_and_unicode() {
        let v = parse(r#""A\t\"\\é""#).expect("valid string");
        assert_eq!(v.as_str(), Some("A\t\"\\é"));
        let v = parse("\"héllo – ☃\"").expect("raw multibyte UTF-8");
        assert_eq!(v.as_str(), Some("héllo – ☃"));
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let v = parse(" \n{ \"k\" :\t[ 1 , 2 ] }\r\n").expect("valid");
        assert_eq!(
            v.get("k").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
    }
}
