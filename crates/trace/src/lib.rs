//! # minato-trace
//!
//! Per-sample lifecycle tracing for the MinatoLoader runtime.
//!
//! `LoaderStats` can say *how fast* the loader runs; this crate answers
//! *where a sample's time went*. Every instrumented thread records
//! typed [`Event`]s — ticket claim, per-pipeline-step start/end, cache
//! and pool hit/miss, queue put/pop, slow-path defer/resume, batch
//! emit, delivery, executor role switches, fault hits — into its own
//! bounded lock-free SPSC [`EventRing`]. Recording is allocation-free
//! and never blocks: a full ring drops the event and counts the drop
//! (surfaced via [`TraceStats`], so loss is never silent).
//!
//! On the consuming side, a [`Collector`] folds events into
//! log-bucketed latency histograms per stage and produces a
//! [`LatencyBreakdown`] (p50/p95/p99 per pipeline step, per queue wait,
//! and end-to-end ticket→delivery), plus a Chrome/Perfetto
//! `trace.json` export ([`Collector::export_chrome_trace`]) that can be
//! opened at <https://ui.perfetto.dev>.
//!
//! The loader integrates all of this behind a single
//! `builder.trace(TraceConfig)` knob; the default configuration is
//! disabled and byte-identical to an untraced build.

pub mod collect;
pub mod event;
pub mod export;
pub mod json;
pub mod ring;
pub mod tracer;

pub use collect::{Collector, LatencyBreakdown, StageLatency};
pub use event::{Event, EventKind, KIND_COUNT};
pub use export::chrome_trace;
pub use ring::EventRing;
pub use tracer::{TraceStats, Tracer, WorkerTrace};

/// Tracing knob for the loader builder.
///
/// The default is **disabled**: no tracer is constructed and every
/// record site compiles down to a skipped `Option` check, so behavior
/// is byte-identical to an untraced loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch; `false` means no tracer exists at all.
    pub enabled: bool,
    /// Events buffered per worker ring before overflow drops begin
    /// (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Number of per-thread rings. 0 lets the loader size it from its
    /// thread count (workers + consumer + slack).
    pub max_workers: usize,
    /// Raw events retained by the collector for the Perfetto export;
    /// 0 keeps histograms only.
    pub export_events: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: 1 << 14,
            max_workers: 0,
            export_events: 0,
        }
    }
}

impl TraceConfig {
    /// Tracing on with default sizing and a 64Ki-event export window —
    /// enough to open a short run in Perfetto.
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            export_events: 1 << 16,
            ..TraceConfig::default()
        }
    }

    /// Tracing on, histograms only (no raw-event retention): the
    /// cheapest always-on production setting.
    pub fn histograms_only() -> TraceConfig {
        TraceConfig {
            enabled: true,
            export_events: 0,
            ..TraceConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        let c = TraceConfig::default();
        assert!(!c.enabled);
        assert!(TraceConfig::on().enabled);
        assert!(TraceConfig::on().export_events > 0);
        assert_eq!(TraceConfig::histograms_only().export_events, 0);
    }
}
