//! Bounded lock-free SPSC event rings built from plain atomic words.
//!
//! Each loader worker owns one [`EventRing`]: the worker is the single
//! producer, the collector (serialized behind the loader's collector
//! mutex) is the single consumer. Slots are four `AtomicU64` words per
//! event, so the implementation needs no `unsafe`: the producer writes
//! the data words `Relaxed` and *publishes* by storing the head counter
//! `Release`; the consumer reads the head `Acquire` before touching the
//! slots, which orders the data reads after the writes. The consumer
//! retires slots by storing the tail `Release`, which the producer reads
//! `Acquire` before overwriting.
//!
//! A full ring **drops** the new event (counted, never blocks): tracing
//! must never add backpressure to the hot path it observes.

use std::sync::atomic::{AtomicU64, Ordering};

/// A bounded single-producer/single-consumer ring of packed events.
///
/// The SPSC discipline is a usage contract, not a type-level guarantee:
/// `push` must only be called by the ring's owning thread and `pop` only
/// under the collector's serialization. Violating it cannot corrupt
/// memory (all slots are atomics) but can tear an event across two
/// writers.
#[derive(Debug)]
pub struct EventRing {
    /// `capacity * 4` atomic words, 4 per event slot.
    slots: Box<[AtomicU64]>,
    /// Event capacity; always a power of two.
    capacity: u64,
    /// Count of events ever published (producer-owned).
    head: AtomicU64,
    /// Count of events ever consumed (consumer-owned).
    tail: AtomicU64,
    /// Events rejected because the ring was full.
    dropped: AtomicU64,
}

impl EventRing {
    /// Creates a ring holding `capacity` events, rounded up to the next
    /// power of two (minimum 8).
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(8).next_power_of_two() as u64;
        let words = (cap as usize) * 4;
        EventRing {
            slots: (0..words).map(|_| AtomicU64::new(0)).collect(),
            capacity: cap,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Event capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Producer side: appends one packed event, or counts a drop if the
    /// ring is full. Never blocks, never allocates.
    // minato-verify: hot-path
    pub fn push(&self, words: [u64; 4]) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let base = ((head & (self.capacity - 1)) * 4) as usize;
        self.slots[base].store(words[0], Ordering::Relaxed);
        self.slots[base + 1].store(words[1], Ordering::Relaxed);
        self.slots[base + 2].store(words[2], Ordering::Relaxed);
        self.slots[base + 3].store(words[3], Ordering::Relaxed);
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: removes and returns the oldest event, if any.
    pub fn pop(&self) -> Option<[u64; 4]> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let base = ((tail & (self.capacity - 1)) * 4) as usize;
        let words = [
            self.slots[base].load(Ordering::Relaxed),
            self.slots[base + 1].load(Ordering::Relaxed),
            self.slots[base + 2].load(Ordering::Relaxed),
            self.slots[base + 3].load(Ordering::Relaxed),
        ];
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Some(words)
    }

    /// Events currently buffered (approximate under concurrency).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        head.wrapping_sub(tail) as usize
    }

    /// Whether the ring currently holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever published into the ring.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Total events rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_round_trip() {
        let r = EventRing::new(8);
        for i in 0..5u64 {
            assert!(r.push([i, i + 1, i + 2, i + 3]));
        }
        for i in 0..5u64 {
            assert_eq!(r.pop(), Some([i, i + 1, i + 2, i + 3]));
        }
        assert_eq!(r.pop(), None);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let r = EventRing::new(8); // Rounds to exactly 8.
        assert_eq!(r.capacity(), 8);
        for i in 0..10u64 {
            r.push([i, 0, 0, 0]);
        }
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.recorded(), 8);
        // The retained prefix is the oldest events, in order.
        assert_eq!(r.pop(), Some([0, 0, 0, 0]));
        // Space freed: pushes succeed again.
        assert!(r.push([99, 0, 0, 0]));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::new(0).capacity(), 8);
        assert_eq!(EventRing::new(9).capacity(), 16);
        assert_eq!(EventRing::new(1024).capacity(), 1024);
    }

    #[test]
    fn concurrent_spsc_stress_no_loss_no_tear() {
        let r = Arc::new(EventRing::new(64));
        let producer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..100_000u64 {
                    // Tear detector: all four words derive from i.
                    if r.push([i, i.wrapping_mul(3), i.wrapping_mul(5), i.wrapping_mul(7)]) {
                        pushed += 1;
                    }
                }
                pushed
            })
        };
        let consumer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                let mut last = None;
                loop {
                    match r.pop() {
                        Some(w) => {
                            assert_eq!(w[1], w[0].wrapping_mul(3), "torn event");
                            assert_eq!(w[2], w[0].wrapping_mul(5), "torn event");
                            assert_eq!(w[3], w[0].wrapping_mul(7), "torn event");
                            if let Some(prev) = last {
                                assert!(w[0] > prev, "reordered event");
                            }
                            last = Some(w[0]);
                            seen += 1;
                        }
                        None if seen + r.dropped() >= 100_000 => break,
                        None => std::thread::yield_now(),
                    }
                }
                seen
            })
        };
        let pushed = producer.join().expect("producer");
        let seen = consumer.join().expect("consumer");
        assert_eq!(pushed, seen);
        assert_eq!(pushed + r.dropped(), 100_000);
    }
}
