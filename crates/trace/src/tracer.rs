//! The recording façade: per-thread ring claiming and event stamping.
//!
//! A [`Tracer`] owns a fixed pool of [`EventRing`]s, one per recording
//! thread. Threads claim a ring lazily on their first record via
//! thread-local state; the claim (which may allocate) happens once per
//! thread per tracer, off the steady-state path. After that, recording
//! is: read a thread-local cell, stamp a monotonic timestamp, pack four
//! words, push — no locks, no allocation.

use crate::event::{Event, EventKind};
use crate::ring::EventRing;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Per-worker recorded/dropped counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerTrace {
    /// Events successfully published into this worker's ring.
    pub recorded: u64,
    /// Events rejected because this worker's ring was full.
    pub dropped: u64,
}

/// Snapshot of tracing health: how much was recorded and, crucially,
/// how much was silently lost (ring overflow or ring exhaustion).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// One entry per ring, indexed by worker id.
    pub workers: Vec<WorkerTrace>,
    /// Sum of `workers[..].recorded`.
    pub recorded: u64,
    /// Sum of `workers[..].dropped` (ring-full drops).
    pub dropped: u64,
    /// Events dropped because more threads tried to record than there
    /// are rings.
    pub unassigned_drops: u64,
}

impl TraceStats {
    /// Every event that was lost, for the overload series and the "no
    /// silent loss" invariant.
    pub fn total_dropped(&self) -> u64 {
        self.dropped + self.unassigned_drops
    }
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Fast path: the ring this thread last used, keyed by tracer id.
    /// `usize::MAX` marks "no ring available for this tracer".
    static LAST_RING: Cell<(u64, usize)> = const { Cell::new((0, usize::MAX)) };
    /// All (tracer id, ring) claims this thread holds; consulted when
    /// the thread alternates between tracers.
    static CLAIMED_RINGS: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

/// Lock-free event recorder shared by every instrumented thread of one
/// loader.
///
/// Timestamps are nanoseconds since the tracer's `origin` instant, so
/// every event of a run shares one monotonic clock.
#[derive(Debug)]
pub struct Tracer {
    id: u64,
    origin: Instant,
    rings: Box<[EventRing]>,
    claimed: AtomicU64,
    unassigned_drops: AtomicU64,
}

impl Tracer {
    /// Creates a tracer with `workers` rings of `ring_capacity` events
    /// each (both clamped to sane minimums), timestamping relative to
    /// `origin`.
    pub fn new(origin: Instant, workers: usize, ring_capacity: usize) -> Tracer {
        let workers = workers.clamp(1, 256);
        Tracer {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            origin,
            rings: (0..workers)
                .map(|_| EventRing::new(ring_capacity))
                .collect(),
            claimed: AtomicU64::new(0),
            unassigned_drops: AtomicU64::new(0),
        }
    }

    /// Nanoseconds elapsed since the tracer's origin.
    // minato-verify: hot-path
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// The shared time origin (loader start), for stamping timestamps
    /// taken outside the tracer.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Records one event with a fresh timestamp. Lock- and
    /// allocation-free after the calling thread's first record.
    // minato-verify: hot-path
    pub fn record(&self, kind: EventKind, epoch: u16, seq: u64, arg: u32, dur_ns: u64) {
        let cached = LAST_RING.with(Cell::get);
        let idx = if cached.0 == self.id {
            cached.1
        } else {
            self.claim_ring()
        };
        if idx == usize::MAX {
            self.unassigned_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ev = Event {
            ts_ns: self.now_ns(),
            kind,
            worker: idx as u8,
            epoch,
            arg,
            seq,
            dur_ns,
        };
        self.rings[idx].push(ev.pack());
    }

    /// Cold path: looks up or claims this thread's ring for this tracer
    /// and caches it in the fast-path cell. Returns `usize::MAX` when
    /// every ring is already claimed by another thread.
    #[cold]
    fn claim_ring(&self) -> usize {
        let idx = CLAIMED_RINGS.with(|claims| {
            let mut claims = claims.borrow_mut();
            if let Some(&(_, idx)) = claims.iter().find(|(id, _)| *id == self.id) {
                return idx;
            }
            let next = self.claimed.fetch_add(1, Ordering::Relaxed) as usize;
            let idx = if next < self.rings.len() {
                next
            } else {
                usize::MAX
            };
            claims.push((self.id, idx));
            idx
        });
        LAST_RING.with(|c| c.set((self.id, idx)));
        idx
    }

    /// The per-worker rings, for the collector to drain.
    pub fn rings(&self) -> &[EventRing] {
        &self.rings
    }

    /// Point-in-time recorded/dropped counters.
    pub fn stats(&self) -> TraceStats {
        let workers: Vec<WorkerTrace> = self
            .rings
            .iter()
            .map(|r| WorkerTrace {
                recorded: r.recorded(),
                dropped: r.dropped(),
            })
            .collect();
        let recorded = workers.iter().map(|w| w.recorded).sum();
        let dropped = workers.iter().map(|w| w.dropped).sum();
        TraceStats {
            workers,
            recorded,
            dropped,
            unassigned_drops: self.unassigned_drops.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lands_in_the_calling_threads_ring() {
        let t = Tracer::new(Instant::now(), 4, 64);
        t.record(EventKind::TicketClaimed, 0, 1, 0, 0);
        t.record(EventKind::Delivered, 0, 1, 0, 500);
        let s = t.stats();
        assert_eq!(s.recorded, 2);
        assert_eq!(s.total_dropped(), 0);
        // Both events share one ring (this thread's).
        assert_eq!(s.workers.iter().filter(|w| w.recorded == 2).count(), 1);
    }

    #[test]
    fn threads_claim_distinct_rings() {
        let t = std::sync::Arc::new(Tracer::new(Instant::now(), 4, 64));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for s in 0..10 {
                        t.record(EventKind::QueuePut, 0, i * 100 + s, 0, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("recorder thread");
        }
        let s = t.stats();
        assert_eq!(s.recorded, 40);
        assert_eq!(s.workers.iter().filter(|w| w.recorded == 10).count(), 4);
    }

    #[test]
    fn ring_exhaustion_counts_unassigned_drops() {
        let t = std::sync::Arc::new(Tracer::new(Instant::now(), 1, 64));
        // First claimant takes the only ring ...
        t.record(EventKind::TicketClaimed, 0, 0, 0, 0);
        // ... so another thread has nowhere to record.
        let t2 = std::sync::Arc::clone(&t);
        std::thread::spawn(move || {
            t2.record(EventKind::TicketClaimed, 0, 1, 0, 0);
        })
        .join()
        .expect("second thread");
        let s = t.stats();
        assert_eq!(s.recorded, 1);
        assert_eq!(s.unassigned_drops, 1);
        assert_eq!(s.total_dropped(), 1);
    }

    #[test]
    fn one_thread_can_serve_two_tracers() {
        let a = Tracer::new(Instant::now(), 2, 64);
        let b = Tracer::new(Instant::now(), 2, 64);
        for _ in 0..3 {
            a.record(EventKind::CacheHit, 0, 0, 0, 0);
            b.record(EventKind::CacheMiss, 0, 0, 0, 0);
        }
        assert_eq!(a.stats().recorded, 3);
        assert_eq!(b.stats().recorded, 3);
    }

    #[test]
    fn timestamps_are_monotone_per_thread() {
        let t = Tracer::new(Instant::now(), 1, 1024);
        for i in 0..100 {
            t.record(EventKind::QueuePut, 0, i, 0, 0);
        }
        let mut last = 0u64;
        while let Some(w) = t.rings()[0].pop() {
            let ev = Event::unpack(w).expect("valid event");
            assert!(ev.ts_ns >= last);
            last = ev.ts_ns;
        }
    }
}
