//! Configuration files: the documented lock-order list and the
//! violation allow-list.
//!
//! Both files use a small TOML subset — `[[table]]` array headers with
//! `key = "string"` / `key = integer` pairs and `#` comments — parsed
//! here directly so the linter stays dependency-free.

use crate::{Rule, Violation};
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// One parsed `[[section]]` table: its name and key/value pairs.
#[derive(Debug, Clone)]
pub struct TomlTable {
    /// Section name (the text inside `[[...]]`).
    pub name: String,
    /// Line the header appeared on (1-based), for error messages.
    pub line: usize,
    /// Key/value pairs; values are unquoted strings.
    pub values: HashMap<String, String>,
}

/// Parses the TOML subset used by the `verify/` config files.
pub fn parse_tables(text: &str, origin: &str) -> Result<Vec<TomlTable>, String> {
    let mut tables: Vec<TomlTable> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            tables.push(TomlTable {
                name: name.trim().to_string(),
                line: lineno,
                values: HashMap::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("{origin}:{lineno}: expected `key = value`"));
        };
        let table = tables
            .last_mut()
            .ok_or_else(|| format!("{origin}:{lineno}: key outside any [[table]]"))?;
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .unwrap_or(value);
        table
            .values
            .insert(key.trim().to_string(), value.to_string());
    }
    Ok(tables)
}

/// The documented lock acquisition order and lock-method aliases.
///
/// `[[order]]` entries declare that a guard over lock key `outer` may be
/// held while lock key `inner` is acquired; every other nested blocking
/// acquisition is a V3 violation. `[[alias]]` entries teach the scanner
/// that a wrapper method (e.g. `lock_op`) acquires a named lock key.
#[derive(Debug, Default, Clone)]
pub struct LockOrder {
    /// Allowed (outer, inner) key pairs.
    pub allowed: HashSet<(String, String)>,
    /// Method name -> lock key it acquires.
    pub aliases: HashMap<String, String>,
}

impl LockOrder {
    /// Loads `verify/lock_order.toml`; a missing file yields an empty
    /// order (every nested acquisition flags).
    pub fn load(path: &Path) -> Result<LockOrder, String> {
        if !path.is_file() {
            return Ok(LockOrder::default());
        }
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&text, &path.display().to_string())
    }

    /// Parses lock-order TOML text.
    pub fn parse(text: &str, origin: &str) -> Result<LockOrder, String> {
        let mut order = LockOrder::default();
        for table in parse_tables(text, origin)? {
            match table.name.as_str() {
                "order" => {
                    let outer = require(&table, "outer", origin)?;
                    let inner = require(&table, "inner", origin)?;
                    require(&table, "reason", origin)?;
                    order.allowed.insert((outer, inner));
                }
                "alias" => {
                    let method = require(&table, "method", origin)?;
                    let key = require(&table, "key", origin)?;
                    order.aliases.insert(method, key);
                }
                other => {
                    return Err(format!(
                        "{origin}:{}: unknown table [[{other}]]",
                        table.line
                    ));
                }
            }
        }
        Ok(order)
    }

    /// Whether holding `outer` while acquiring `inner` is documented.
    pub fn permits(&self, outer: &str, inner: &str) -> bool {
        self.allowed
            .contains(&(outer.to_string(), inner.to_string()))
    }
}

/// One `verify/allow.toml` suppression entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule being suppressed.
    pub rule: Rule,
    /// Workspace-relative file the suppression applies to.
    pub file: String,
    /// Specific line, or `None` for the whole file.
    pub line: Option<usize>,
    /// Mandatory justification.
    pub reason: String,
}

/// The file-level allow-list (`verify/allow.toml`).
#[derive(Debug, Default, Clone)]
pub struct AllowList {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl AllowList {
    /// Loads `verify/allow.toml`; a missing file yields an empty list.
    pub fn load(path: &Path) -> Result<AllowList, String> {
        if !path.is_file() {
            return Ok(AllowList::default());
        }
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::parse(&text, &path.display().to_string())
    }

    /// Parses allow-list TOML text.
    pub fn parse(text: &str, origin: &str) -> Result<AllowList, String> {
        let mut list = AllowList::default();
        for table in parse_tables(text, origin)? {
            if table.name != "allow" {
                return Err(format!(
                    "{origin}:{}: unknown table [[{}]]",
                    table.line, table.name
                ));
            }
            let rule_id = require(&table, "rule", origin)?;
            let rule = Rule::parse(&rule_id)
                .ok_or_else(|| format!("{origin}:{}: unknown rule `{rule_id}`", table.line))?;
            let line =
                match table.values.get("line") {
                    Some(v) => Some(v.parse::<usize>().map_err(|_| {
                        format!("{origin}:{}: `line` must be an integer", table.line)
                    })?),
                    None => None,
                };
            list.entries.push(AllowEntry {
                rule,
                file: require(&table, "file", origin)?,
                line,
                reason: require(&table, "reason", origin)?,
            });
        }
        Ok(list)
    }

    /// Index of the first entry suppressing `v`, if any.
    pub fn matches(&self, v: &Violation) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == v.rule && e.file == v.file && e.line.is_none_or(|l| l == v.line)
        })
    }
}

fn require(table: &TomlTable, key: &str, origin: &str) -> Result<String, String> {
    table
        .values
        .get(key)
        .filter(|v| !v.is_empty())
        .cloned()
        .ok_or_else(|| {
            format!(
                "{origin}:{}: [[{}]] missing required key `{key}`",
                table.line, table.name
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_order_and_alias() {
        let text = r#"
# comment
[[order]]
outer = "state"
inner = "shard"
reason = "striped child"

[[alias]]
method = "lock_op"
key = "inner"
"#;
        let lo = LockOrder::parse(text, "t").unwrap();
        assert!(lo.permits("state", "shard"));
        assert!(!lo.permits("shard", "state"));
        assert_eq!(lo.aliases.get("lock_op").map(String::as_str), Some("inner"));
    }

    #[test]
    fn order_requires_reason() {
        let text = "[[order]]\nouter = \"a\"\ninner = \"b\"\n";
        assert!(LockOrder::parse(text, "t").is_err());
    }

    #[test]
    fn allow_entry_matches_by_file_and_line() {
        let text =
            "[[allow]]\nrule = \"V1\"\nfile = \"crates/core/src/x.rs\"\nline = 7\nreason = \"r\"\n";
        let list = AllowList::parse(text, "t").unwrap();
        let hit = Violation {
            file: "crates/core/src/x.rs".into(),
            line: 7,
            rule: Rule::V1,
            msg: String::new(),
        };
        assert_eq!(list.matches(&hit), Some(0));
        let miss = Violation { line: 8, ..hit };
        assert_eq!(list.matches(&miss), None);
    }
}
