//! Workspace invariant linter for the minato loader.
//!
//! Six PRs in, the loader's correctness rests on concurrency invariants
//! that used to live only in reviewers' heads: reserve-then-publish must
//! never run the device hook under a queue lock, pool bytes must never
//! exceed budget even on unwind, role re-bids happen only at safe
//! points, and the checkpoint codec stays dependency-free. This crate
//! machine-checks the lintable fragment of those invariants with a
//! line-aware scanner (no `syn`/`quote` — the build is offline) and six
//! repo-specific rules:
//!
//! * **V1** — no `.unwrap()` / `.expect(` in non-test, non-example
//!   library code.
//! * **V2** — no heap-allocation constructors (`Vec::new`, `vec![`,
//!   `.to_vec(`, `.clone()`, `String::from`, `format!`, ...) inside
//!   scopes annotated `// minato-verify: hot-path`.
//! * **V3** — no lock guard held across a blocking call (`recv`, `wait`
//!   on a foreign condvar, `sleep`, `join`), and no second blocking lock
//!   acquisition under a held guard unless the (outer, inner) pair is
//!   documented in `verify/lock_order.toml`.
//! * **V4** — every public item in `crates/{core,exec,pool,cache}` has
//!   a doc comment.
//! * **V5** — every `unsafe` token carries a nearby `// SAFETY:` line.
//! * **V6** — every `Ordering::` use in the queue core
//!   (`crates/core/src/queue/`) carries a nearby `// ORDERING:` comment
//!   justifying the chosen memory ordering, the way V5 guards `unsafe`.
//!
//! Violations are suppressed either by an inline
//! `// minato-verify: allow(Vn) reason` comment or by an entry in
//! `verify/allow.toml`; the combined allow-list is budgeted (at most
//! [`ALLOW_BUDGET`] entries) so suppressions stay a scarce resource.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod config;
pub mod rules;
pub mod scan;

pub use config::{AllowEntry, AllowList, LockOrder};
pub use rules::{lint_source, FileClass};

/// Hard cap on the total number of allow-list entries (inline comments
/// plus `verify/allow.toml` rows) the workspace may carry.
pub const ALLOW_BUDGET: usize = 10;

/// The six workspace invariant rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// No `.unwrap()` / `.expect(` in library code.
    V1,
    /// No heap-allocation constructors in `hot-path` scopes.
    V2,
    /// No lock guard held across a blocking call or an undocumented
    /// second lock acquisition.
    V3,
    /// Public items in core/exec/pool/cache need doc comments.
    V4,
    /// `unsafe` requires a `// SAFETY:` line.
    V5,
    /// Atomic `Ordering::` uses in the queue core require a
    /// `// ORDERING:` justification.
    V6,
}

impl Rule {
    /// Stable rule identifier, as used in allow comments and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::V1 => "V1",
            Rule::V2 => "V2",
            Rule::V3 => "V3",
            Rule::V4 => "V4",
            Rule::V5 => "V5",
            Rule::V6 => "V6",
        }
    }

    /// Parses a rule identifier (`"V1"`..`"V6"`).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "V1" => Some(Rule::V1),
            "V2" => Some(Rule::V2),
            "V3" => Some(Rule::V3),
            "V4" => Some(Rule::V4),
            "V5" => Some(Rule::V5),
            "V6" => Some(Rule::V6),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Outcome of linting a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived the allow-list, sorted by file/line.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Inline `minato-verify: allow` comments present in the tree.
    pub inline_allows: usize,
    /// Entries in `verify/allow.toml`.
    pub file_allows: usize,
    /// `allow.toml` entries that suppressed nothing (stale).
    pub stale_allows: Vec<String>,
    /// Malformed inline allow comments (missing reason / bad rule id).
    pub bad_allow_comments: Vec<String>,
}

impl Report {
    /// Total allow-list entries counted against [`ALLOW_BUDGET`].
    pub fn allow_entries(&self) -> usize {
        self.inline_allows + self.file_allows
    }
}

/// Collects the `.rs` files the linter scans: every workspace member's
/// `src/` tree (`crates/*/src`, root `src/`). Test trees, examples and
/// benches are not scanned — V1 is scoped to library code by design,
/// and the dynamic detectors cover the rest at runtime. The `shims/`
/// crates model third-party dependencies and are exempt like any other
/// dependency.
pub fn collect_sources(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("read {}: {e}", crates.display()))?
            .filter_map(|d| d.ok().map(|d| d.path()))
            .collect();
        names.sort();
        for krate in names {
            collect_rs(&krate.join("src"), root, &mut out)?;
        }
    }
    collect_rs(&root.join("src"), root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|d| d.ok().map(|d| d.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip prefix: {e}"))?
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Lints the workspace rooted at `root` (the directory holding
/// `verify/lock_order.toml` and `verify/allow.toml`).
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let lock_order = LockOrder::load(&root.join("verify/lock_order.toml"))?;
    let allow = AllowList::load(&root.join("verify/allow.toml"))?;
    let files = collect_sources(root)?;
    let mut report = Report {
        file_allows: allow.entries.len(),
        ..Report::default()
    };
    let mut used = vec![false; allow.entries.len()];
    for (rel, path) in &files {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let outcome = lint_source(rel, &text, &lock_order);
        report.files_scanned += 1;
        report.inline_allows += outcome.inline_allows;
        report.bad_allow_comments.extend(outcome.bad_allow_comments);
        for v in outcome.violations {
            match allow.matches(&v) {
                Some(i) => used[i] = true,
                None => report.violations.push(v),
            }
        }
    }
    for (i, entry) in allow.entries.iter().enumerate() {
        if !used[i] {
            report.stale_allows.push(format!(
                "{} {} (line {:?}): {}",
                entry.rule.id(),
                entry.file,
                entry.line,
                entry.reason
            ));
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}
