//! `minato-verify` — the workspace invariant linter, as a CI gate.
//!
//! ```text
//! cargo run -p minato-verify              # lint, fail on violations
//! cargo run -p minato-verify -- --deny-all  # + fail on stale allows
//! ```
//!
//! Exit status: 0 when clean, 1 on violations (or, under `--deny-all`,
//! on stale allow-list entries, malformed allow comments, or an
//! allow-list over budget), 2 on usage/configuration errors.

use minato_verify::{lint_workspace, ALLOW_BUDGET};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "minato-verify [--deny-all] [--root <workspace>]\n\
                     Lints the workspace against invariant rules V1-V5."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.map_or_else(find_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("minato-verify: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("minato-verify: {e}");
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        println!("{v}");
    }
    for bad in &report.bad_allow_comments {
        println!("{bad} [malformed allow comment]");
    }
    let mut failed = !report.violations.is_empty();
    if deny_all {
        for stale in &report.stale_allows {
            println!("stale allow.toml entry: {stale}");
        }
        if report.allow_entries() > ALLOW_BUDGET {
            println!(
                "allow-list over budget: {} entries > {ALLOW_BUDGET}",
                report.allow_entries()
            );
        }
        failed = failed
            || !report.stale_allows.is_empty()
            || !report.bad_allow_comments.is_empty()
            || report.allow_entries() > ALLOW_BUDGET;
    }
    println!(
        "minato-verify: {} files, {} violation(s), {} allow entr{} ({} inline + {} in allow.toml; budget {})",
        report.files_scanned,
        report.violations.len(),
        report.allow_entries(),
        if report.allow_entries() == 1 { "y" } else { "ies" },
        report.inline_allows,
        report.file_allows,
        ALLOW_BUDGET,
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the current directory to the workspace root — the
/// first ancestor holding a `verify/` directory next to a `Cargo.toml`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        if dir.join("verify").is_dir() && dir.join("Cargo.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(
                "no workspace root found (looked for a `verify/` dir beside Cargo.toml); \
                 pass --root"
                    .to_string(),
            );
        }
    }
}
