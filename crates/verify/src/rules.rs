//! The six invariant rules, applied over scanned lines.
//!
//! The engine walks a file once, tracking brace depth, `#[cfg(test)]`
//! scopes, `// minato-verify: hot-path` scopes, and live lock-guard
//! bindings, then applies the per-line rule checks. Precision targets
//! rustfmt-formatted code: statements may wrap across lines (a small
//! statement buffer handles bindings split by rustfmt), but multiple
//! statements jammed onto one line are checked at line granularity.

use crate::config::LockOrder;
use crate::scan::{scan, Line};
use crate::{Rule, Violation};
use std::collections::HashMap;

/// How the rules apply to one file, derived from its workspace path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Library code: V3 (lock discipline) applies. True for
    /// `crates/*/src` and root `src/` outside `bin/`.
    pub library: bool,
    /// Panic-free code: V1 (no unwrap/expect) applies. Library code
    /// minus `crates/bench` — the measurement harness terminates on
    /// malformed experiment setups by design, like a binary would.
    pub panic_free: bool,
    /// Doc-comment coverage (V4) applies: the core/exec/pool/cache
    /// public surface.
    pub docs_required: bool,
    /// Queue-core memory-ordering discipline (V6) applies: the
    /// lock-free queue implementation under `crates/core/src/queue/`.
    pub queue_core: bool,
}

impl FileClass {
    /// Classifies a workspace-relative path (forward slashes).
    pub fn of(rel: &str) -> FileClass {
        let in_src =
            rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
        let library = in_src && !rel.contains("/bin/");
        let panic_free = library && !rel.starts_with("crates/bench/");
        let docs_required = ["core", "exec", "pool", "cache"]
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
        let queue_core = rel.starts_with("crates/core/src/queue");
        FileClass {
            library,
            panic_free,
            docs_required,
            queue_core,
        }
    }
}

/// Result of linting one source file.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Violations not suppressed by inline allows.
    pub violations: Vec<Violation>,
    /// Inline allow comments found (they count against the budget).
    pub inline_allows: usize,
    /// Malformed inline allow comments (`file:line: problem`).
    pub bad_allow_comments: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Test,
    Hot,
}

#[derive(Debug)]
struct Guard {
    name: String,
    key: String,
    depth: i64,
    line: usize,
}

const V2_PATTERNS: &[&str] = &[
    "Vec::new(",
    "vec![",
    ".to_vec(",
    ".clone()",
    "String::from(",
    "String::new(",
    "format!(",
    "Box::new(",
    ".to_string(",
    ".to_owned(",
];

/// Blocking calls a held guard must not span. Wait-family entries are
/// exempted when they wait *on the held guard itself* (a condvar wait
/// releases its mutex).
const BLOCKING: &[&str] = &[
    ".recv(",
    ".recv_timeout(",
    ".recv_deadline(",
    ".wait(",
    ".wait_for(",
    ".wait_until(",
    "sleep(",
    ".join()",
];

/// Lints one file's source text. `rel` is the workspace-relative path
/// used both for rule scoping ([`FileClass::of`]) and in reports.
pub fn lint_source(rel: &str, text: &str, lock: &LockOrder) -> LintOutcome {
    let class = FileClass::of(rel);
    let lines = scan(text);
    let mut out = LintOutcome::default();
    let allows = inline_allows(rel, &lines, &mut out);

    let mut depth: i64 = 0;
    let mut scopes: Vec<(ScopeKind, i64)> = Vec::new();
    let mut pending_test = false;
    let mut pending_hot = false;
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt = String::new();
    let mut prev_doc = false;
    let mut attr_open = 0i64;

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        let trimmed = code.trim();
        let test_at_start = scopes.iter().any(|s| s.0 == ScopeKind::Test);

        if !line.doc && line.comment.contains("minato-verify: hot-path") {
            pending_hot = true;
        }
        if code.contains("#[cfg(test)") || code.contains("#[cfg(all(test") {
            pending_test = true;
        }

        // Brace walk: track depth, attach pending scopes at the first
        // opened brace, retire scopes/guards on close.
        let mut min_depth = depth;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_test {
                        scopes.push((ScopeKind::Test, depth));
                        pending_test = false;
                        pending_hot = false;
                    } else if pending_hot {
                        scopes.push((ScopeKind::Hot, depth));
                        pending_hot = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    min_depth = min_depth.min(depth);
                    while scopes.last().is_some_and(|s| s.1 > depth) {
                        scopes.pop();
                    }
                }
                // An item ended without a body (`#[cfg(test)] use x;`,
                // `pub mod x;`): pending markers no longer attach.
                ';' if depth == min_depth => {
                    pending_test = false;
                    pending_hot = false;
                }
                _ => {}
            }
        }
        guards.retain(|g| g.depth <= min_depth);
        if let Some(name) = dropped_binding(code) {
            guards.retain(|g| g.name != name);
        }

        let test_active = test_at_start || scopes.iter().any(|s| s.0 == ScopeKind::Test);
        let hot_active = scopes.iter().any(|s| s.0 == ScopeKind::Hot);

        // Statement buffer for bindings wrapped across lines.
        stmt.push(' ');
        stmt.push_str(code);

        if class.library && !test_active {
            check_v3(
                rel,
                lineno,
                code,
                &stmt,
                depth,
                lock,
                &mut guards,
                &allows,
                &mut out,
            );
            if class.panic_free {
                check_v1(rel, lineno, code, &allows, &mut out);
            }
        }
        if hot_active && !test_active {
            check_v2(rel, lineno, code, &allows, &mut out);
        }
        if class.docs_required && !test_active {
            check_v4(rel, lineno, trimmed, prev_doc, &allows, &mut out);
        }
        check_v5(rel, lineno, idx, code, &lines, &allows, &mut out);
        if class.queue_core && !test_active {
            check_v6(rel, lineno, idx, code, &lines, &allows, &mut out);
        }

        if code.contains(';') || code.contains('{') || code.contains('}') {
            let cut = code
                .rfind([';', '{', '}'])
                .map(|p| &code[p + 1..])
                .unwrap_or("");
            stmt.clear();
            stmt.push_str(cut);
        }

        // V4 doc-comment adjacency: attributes (including multi-line
        // ones) carry the "preceded by docs" flag through to the item;
        // anything else set or reset it.
        if attr_open > 0 {
            attr_open += bracket_delta(code);
        } else if line.doc {
            prev_doc = true;
        } else if trimmed.starts_with("#[") || trimmed.starts_with("#![") {
            attr_open = bracket_delta(code);
        } else if trimmed.is_empty() && !line.comment.is_empty() {
            // A plain comment between docs and item (e.g. a hot-path
            // marker) does not break rustdoc attachment.
        } else {
            prev_doc = false;
        }
    }
    out
}

/// Net `[`/`]` balance of one line, for multi-line attribute tracking.
fn bracket_delta(code: &str) -> i64 {
    code.chars()
        .map(|c| match c {
            '[' => 1,
            ']' => -1,
            _ => 0,
        })
        .sum()
}

type AllowMap = HashMap<usize, Vec<Rule>>;

/// Collects inline `// minato-verify: allow(Vn) reason` comments. A
/// comment on a code line applies to that line; a comment on its own
/// line applies to the next line carrying code.
fn inline_allows(rel: &str, lines: &[Line], out: &mut LintOutcome) -> AllowMap {
    let mut map: AllowMap = HashMap::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.doc {
            // Doc comments *describing* the allow syntax don't count.
            continue;
        }
        let Some(pos) = line.comment.find("minato-verify: allow(") else {
            continue;
        };
        let rest = &line.comment[pos + "minato-verify: allow(".len()..];
        let Some(close) = rest.find(')') else {
            out.bad_allow_comments
                .push(format!("{rel}:{}: unclosed allow(...)", idx + 1));
            continue;
        };
        let Some(rule) = Rule::parse(&rest[..close]) else {
            out.bad_allow_comments.push(format!(
                "{rel}:{}: unknown rule `{}` in allow",
                idx + 1,
                &rest[..close]
            ));
            continue;
        };
        if rest[close + 1..].trim().is_empty() {
            out.bad_allow_comments
                .push(format!("{rel}:{}: allow({rule}) needs a reason", idx + 1));
            continue;
        }
        out.inline_allows += 1;
        let target = if line.code.trim().is_empty() {
            lines[idx + 1..]
                .iter()
                .position(|l| !l.code.trim().is_empty())
                .map(|off| idx + 1 + off + 1)
        } else {
            Some(idx + 1)
        };
        if let Some(t) = target {
            map.entry(t).or_default().push(rule);
        }
    }
    map
}

fn allowed(allows: &AllowMap, line: usize, rule: Rule) -> bool {
    allows.get(&line).is_some_and(|rs| rs.contains(&rule))
}

fn push(out: &mut LintOutcome, allows: &AllowMap, rel: &str, line: usize, rule: Rule, msg: String) {
    if !allowed(allows, line, rule) {
        out.violations.push(Violation {
            file: rel.to_string(),
            line,
            rule,
            msg,
        });
    }
}

fn check_v1(rel: &str, lineno: usize, code: &str, allows: &AllowMap, out: &mut LintOutcome) {
    for pat in [".unwrap()", ".expect("] {
        if code.contains(pat) {
            push(
                out,
                allows,
                rel,
                lineno,
                Rule::V1,
                format!("`{pat}` in library code; propagate the error or allow with a reason"),
            );
        }
    }
}

fn check_v2(rel: &str, lineno: usize, code: &str, allows: &AllowMap, out: &mut LintOutcome) {
    for pat in V2_PATTERNS {
        if code.contains(pat) {
            push(
                out,
                allows,
                rel,
                lineno,
                Rule::V2,
                format!("heap allocation `{pat}` inside a hot-path scope"),
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_v3(
    rel: &str,
    lineno: usize,
    code: &str,
    stmt: &str,
    depth: i64,
    lock: &LockOrder,
    guards: &mut Vec<Guard>,
    allows: &AllowMap,
    out: &mut LintOutcome,
) {
    // Acquisitions: blocking lock()/read()/write() plus configured
    // aliases; try_lock is non-blocking and cannot deadlock as the
    // *inner* acquisition, but its guard is tracked as a held lock.
    let mut pats: Vec<(String, bool, Option<String>)> = vec![
        (".lock(".to_string(), true, None),
        (".try_lock(".to_string(), false, None),
        (".read()".to_string(), true, None),
        (".write()".to_string(), true, None),
    ];
    for (method, key) in &lock.aliases {
        pats.push((format!(".{method}("), true, Some(key.clone())));
    }
    let mut acquisitions: Vec<(usize, String, bool)> = Vec::new();
    for (pat, blocking, alias_key) in &pats {
        let mut from = 0;
        while let Some(p) = code[from..].find(pat.as_str()) {
            let at = from + p;
            let key = alias_key.clone().unwrap_or_else(|| receiver_key(code, at));
            acquisitions.push((at, key, *blocking));
            from = at + pat.len();
        }
    }
    acquisitions.sort_by_key(|a| a.0);
    for (_, key, blocking) in &acquisitions {
        if *blocking {
            for g in guards.iter() {
                if !lock.permits(&g.key, key) {
                    push(
                        out,
                        allows,
                        rel,
                        lineno,
                        Rule::V3,
                        format!(
                            "lock `{key}` acquired while holding `{}` (bound line {}); \
                             not in verify/lock_order.toml",
                            g.key, g.line
                        ),
                    );
                }
            }
        }
    }
    // A `let` binding turns the line's (first) acquisition into a held
    // guard, registered at the line's end depth so `if let Some(g) =
    // q.try_lock() {` scopes to the block it opens.
    if let (Some((_, key, _)), Some(name)) = (acquisitions.first(), binding_name(stmt)) {
        guards.push(Guard {
            name,
            key: key.clone(),
            depth,
            line: lineno,
        });
    }

    for pat in BLOCKING {
        let Some(p) = code.find(pat) else { continue };
        if guards.is_empty() {
            continue;
        }
        let waited = if pat.starts_with(".wait") {
            call_args(code, p + pat.len() - 1)
        } else {
            String::new()
        };
        for g in guards.iter() {
            if pat.starts_with(".wait") && contains_word(&waited, &g.name) {
                continue; // Condvar wait releases this guard.
            }
            push(
                out,
                allows,
                rel,
                lineno,
                Rule::V3,
                format!(
                    "blocking call `{}` while holding lock `{}` (bound line {})",
                    pat.trim_matches(|c| c == '.' || c == '('),
                    g.key,
                    g.line
                ),
            );
        }
    }
}

fn check_v4(
    rel: &str,
    lineno: usize,
    trimmed: &str,
    prev_doc: bool,
    allows: &AllowMap,
    out: &mut LintOutcome,
) {
    let Some((kind, name)) = pub_item(trimmed) else {
        return;
    };
    if kind == "mod" && trimmed.ends_with(';') {
        // `pub mod x;` — the file module documents itself with `//!`.
        return;
    }
    if !prev_doc {
        push(
            out,
            allows,
            rel,
            lineno,
            Rule::V4,
            format!("public {kind} `{name}` lacks a doc comment"),
        );
    }
}

fn check_v5(
    rel: &str,
    lineno: usize,
    idx: usize,
    code: &str,
    lines: &[Line],
    allows: &AllowMap,
    out: &mut LintOutcome,
) {
    if !contains_word(code, "unsafe") {
        return;
    }
    let lo = idx.saturating_sub(3);
    let hi = (idx + 2).min(lines.len());
    let documented = lines[lo..hi].iter().any(|l| l.comment.contains("SAFETY:"));
    if !documented {
        push(
            out,
            allows,
            rel,
            lineno,
            Rule::V5,
            "`unsafe` without a nearby `// SAFETY:` comment".to_string(),
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn check_v6(
    rel: &str,
    lineno: usize,
    idx: usize,
    code: &str,
    lines: &[Line],
    allows: &AllowMap,
    out: &mut LintOutcome,
) {
    if !code.contains("Ordering::") {
        return;
    }
    let lo = idx.saturating_sub(3);
    let hi = (idx + 2).min(lines.len());
    let documented = lines[lo..hi]
        .iter()
        .any(|l| l.comment.contains("ORDERING:"));
    if !documented {
        push(
            out,
            allows,
            rel,
            lineno,
            Rule::V6,
            "atomic `Ordering::` in the queue core without a nearby `// ORDERING:` justification"
                .to_string(),
        );
    }
}

/// `drop(name)` / `mem::drop(name)` on this line, if any.
fn dropped_binding(code: &str) -> Option<String> {
    let p = code.find("drop(")?;
    if p > 0 {
        let prev = code[..p].chars().next_back();
        if prev.is_some_and(|c| c.is_alphanumeric() || c == '_') && !code[..p].ends_with("::") {
            return None; // e.g. `airdrop(` — not a drop call.
        }
    }
    let inner = call_args(code, p + "drop(".len() - 1);
    let name = inner.trim();
    name.chars()
        .all(|c| c.is_alphanumeric() || c == '_')
        .then(|| name.to_string())
        .filter(|n| !n.is_empty())
}

/// The argument text of the call whose `(` sits at `open`.
fn call_args(code: &str, open: usize) -> String {
    let bytes: Vec<char> = code.chars().collect();
    if bytes.get(open) != Some(&'(') {
        return String::new();
    }
    let mut depth = 0;
    let mut outp = String::new();
    for &c in &bytes[open..] {
        if c == '(' {
            depth += 1;
            if depth == 1 {
                continue;
            }
        }
        if c == ')' {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        outp.push(c);
    }
    outp
}

fn contains_word(text: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(p) = text[from..].find(word) {
        let at = from + p;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = text[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// Extracts the lock key for an acquisition: the last plain identifier
/// of the receiver chain before the `.` at `dot`, skipping index/call
/// groups (`stripes[(h + k) % n].lock()` keys as `stripes`).
fn receiver_key(code: &str, dot: usize) -> String {
    let b: Vec<char> = code[..dot].chars().collect();
    let mut i = b.len();
    let mut last = String::new();
    while i > 0 {
        let c = b[i - 1];
        if c == ')' || c == ']' {
            let (open, close) = if c == ')' { ('(', ')') } else { ('[', ']') };
            let mut depth = 0;
            while i > 0 {
                let ch = b[i - 1];
                if ch == close {
                    depth += 1;
                } else if ch == open {
                    depth -= 1;
                }
                i -= 1;
                if depth == 0 {
                    break;
                }
            }
        } else if c.is_alphanumeric() || c == '_' {
            let end = i;
            while i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
                i -= 1;
            }
            last = b[i..end].iter().collect();
            break;
        } else if c == '.' || c == ':' {
            i -= 1;
        } else {
            break;
        }
    }
    if last.is_empty() || last == "self" {
        "<unnamed>".to_string()
    } else {
        last
    }
}

/// The bound name of a `let`/`if let`/`while let` statement, if the
/// statement text contains one (`let g`, `let mut g`, `let Some(g)`).
fn binding_name(stmt: &str) -> Option<String> {
    let p = stmt.rfind("let ")?;
    let rest = &stmt[p + 4..];
    let eq = rest.find('=')?;
    let pattern = rest[..eq].trim();
    let pattern = pattern.strip_prefix("mut ").unwrap_or(pattern);
    let inner = pattern
        .split_once('(')
        .map(|(_, tail)| tail)
        .unwrap_or(pattern);
    let name: String = inner
        .trim_start_matches("mut ")
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty() && name != "_").then_some(name)
}

/// Parses `pub <qualifiers> <kind> <name>` item heads. Returns `None`
/// for non-items, `pub(crate)`-scoped items, and `pub use` re-exports.
fn pub_item(trimmed: &str) -> Option<(&'static str, String)> {
    let rest = trimmed.strip_prefix("pub ")?;
    let kinds: &[&str] = &[
        "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
    ];
    let mut toks = rest.split_whitespace().peekable();
    while let Some(tok) = toks.next() {
        let tok = tok.trim_end_matches(|c: char| !c.is_alphanumeric() && c != '_');
        match tok {
            "use" | "macro" => return None,
            "async" | "unsafe" => continue,
            "extern" => {
                // Skip the ABI string if present.
                if toks.peek().is_some_and(|t| t.starts_with('"')) {
                    toks.next();
                }
                continue;
            }
            "const" => {
                if toks.peek() == Some(&"fn") {
                    continue; // `pub const fn` — qualifier, not item.
                }
                let name = item_name(toks.next()?);
                return Some(("const", name));
            }
            k if kinds.contains(&k) => {
                let kind = kinds.iter().find(|&&x| x == k)?;
                let name = item_name(toks.next()?);
                return Some((kind, name));
            }
            _ => return None,
        }
    }
    None
}

fn item_name(tok: &str) -> String {
    tok.chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(text: &str) -> Vec<Violation> {
        lint_source("crates/core/src/sample.rs", text, &LockOrder::default()).violations
    }

    #[test]
    fn v1_skips_test_modules() {
        let src =
            "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\n";
        let v = lint_lib(src);
        assert_eq!(v.iter().filter(|v| v.rule == Rule::V1).count(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn inline_allow_suppresses() {
        let src = "fn a() {\n    x.unwrap(); // minato-verify: allow(V1) invariant: set above\n}\n";
        assert!(lint_lib(src).iter().all(|v| v.rule != Rule::V1));
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "fn a() {\n    x.unwrap(); // minato-verify: allow(V1)\n}\n";
        let out = lint_source("crates/core/src/s.rs", src, &LockOrder::default());
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.bad_allow_comments.len(), 1);
    }

    #[test]
    fn v3_condvar_wait_on_held_guard_is_fine() {
        let src = "fn a(&self) {\n    let mut g = self.inner.lock();\n    self.not_empty.wait(&mut g);\n}\n";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn v3_sleep_under_guard_fires() {
        let src = "fn a(&self) {\n    let g = self.inner.lock();\n    std::thread::sleep(d);\n}\n";
        let v = lint_lib(src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), (Rule::V3, 3));
    }

    #[test]
    fn v3_guard_scope_ends_at_block_close() {
        let src = "fn a(&self) {\n    {\n        let g = self.inner.lock();\n    }\n    std::thread::sleep(d);\n}\n";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn v3_drop_releases_guard() {
        let src = "fn a(&self) {\n    let g = self.inner.lock();\n    drop(g);\n    std::thread::sleep(d);\n}\n";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn v3_nested_lock_respects_order_file() {
        let src =
            "fn a(&self) {\n    let g = self.state.lock();\n    let h = self.shard.lock();\n}\n";
        assert_eq!(lint_lib(src).len(), 1);
        let mut lo = LockOrder::default();
        lo.allowed.insert(("state".into(), "shard".into()));
        let v = lint_source("crates/core/src/s.rs", src, &lo).violations;
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn v4_requires_docs_in_core() {
        let src = "/// Documented.\npub fn a() {}\n\npub fn b() {}\n";
        let v = lint_lib(src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), (Rule::V4, 4));
    }

    #[test]
    fn v4_not_required_outside_core_like_crates() {
        let src = "pub fn b() {}\n";
        let v = lint_source("crates/data/src/s.rs", src, &LockOrder::default()).violations;
        assert!(v.is_empty());
    }

    #[test]
    fn v5_unsafe_needs_safety_comment() {
        let src = "fn a() {\n    let p = unsafe { *x };\n}\n";
        let v = lint_lib(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::V5);
        let ok = "fn a() {\n    // SAFETY: x is valid for reads.\n    let p = unsafe { *x };\n}\n";
        assert!(lint_lib(ok).is_empty());
    }

    #[test]
    fn v2_only_in_hot_scopes() {
        let src = "fn cold() { let v = Vec::new(); }\n// minato-verify: hot-path\nfn hot() {\n    let v = Vec::new();\n}\n";
        let v = lint_lib(src);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), (Rule::V2, 4));
    }

    #[test]
    fn receiver_key_skips_index_groups() {
        assert_eq!(
            receiver_key("class.stripes[(h + k) % n].lock()", 26),
            "stripes"
        );
        assert_eq!(receiver_key("self.inner.lock()", 10), "inner");
        assert_eq!(receiver_key("LIVE_POOLS.lock()", 10), "LIVE_POOLS");
    }
}
