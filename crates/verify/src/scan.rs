//! Line-aware lexical scanner.
//!
//! Splits each source line into *code* (string-literal contents blanked,
//! comments removed) and *comment* text, carrying string/block-comment
//! state across lines. This is deliberately not a full Rust lexer: the
//! rules only need to know (a) which tokens are code rather than prose,
//! and (b) what the comments say (`SAFETY:`, `minato-verify:` markers).

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text with comments stripped and string contents blanked to
    /// spaces (delimiting quotes retained). Column positions are *not*
    /// preserved exactly; token adjacency is.
    pub code: String,
    /// Concatenated comment text seen on this line (line and block
    /// comments, including doc comments, without the `//`/`/*` sigils).
    pub comment: String,
    /// Whether the raw line is a doc comment (`///` or `//!`).
    pub doc: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    /// Inside a (possibly nested) block comment.
    Block(u32),
    /// Inside a normal string literal.
    Str,
    /// Inside a raw string literal with this many `#`s.
    RawStr(u32),
}

/// Scans `text` into per-line code/comment views.
pub fn scan(text: &str) -> Vec<Line> {
    let mut state = State::Code;
    let mut out = Vec::new();
    for raw in text.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut line = Line {
            doc: {
                let t = raw.trim_start();
                state == State::Code && (t.starts_with("///") || t.starts_with("//!"))
            },
            ..Line::default()
        };
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        line.comment.extend(&chars[i + 2..]);
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        line.code.push(' ');
                        i += 2;
                    } else if c == '"' {
                        state = State::Str;
                        line.code.push('"');
                        i += 1;
                    } else if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
                        let mut hashes = 0;
                        let mut j = i + 1;
                        if chars.get(j) == Some(&'"') || chars.get(j) == Some(&'#') {
                        } else {
                            j += 1; // br"..."
                        }
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        state = State::RawStr(hashes);
                        line.code.push('"');
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        state = State::Str;
                        line.code.push('"');
                        i += 2;
                    } else if c == '\'' {
                        // Char literal vs lifetime: a char literal closes
                        // within a couple of characters; a lifetime never
                        // has a closing quote.
                        if chars.get(i + 1) == Some(&'\\') {
                            let close = (i + 2..chars.len().min(i + 8))
                                .find(|&k| chars[k] == '\'' && chars[k - 1] != '\\');
                            match close {
                                Some(k) => {
                                    for _ in i..=k {
                                        line.code.push(' ');
                                    }
                                    i = k + 1;
                                }
                                None => {
                                    line.code.push(' ');
                                    i += 1;
                                }
                            }
                        } else if chars.get(i + 2) == Some(&'\'') {
                            line.code.push_str("   ");
                            i += 3;
                        } else {
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
                State::Block(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(c);
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        line.code.push(' ');
                        if i + 1 < chars.len() {
                            line.code.push(' ');
                        }
                        i += 2;
                    } else if c == '"' {
                        state = State::Code;
                        line.code.push('"');
                        i += 1;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        state = State::Code;
                        line.code.push('"');
                        i += 1 + hashes as usize;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        out.push(line);
    }
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw string literal and
/// is not merely an identifier ending in `r`/`b`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
    if prev_ident {
        return false;
    }
    let mut j = i + 1;
    if chars[i] == 'b' {
        if chars.get(j) != Some(&'r') {
            return false;
        }
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"') && (chars.get(i + 1) == Some(&'"') || j > i + 1)
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments() {
        let l = &scan("let x = 1; // note .unwrap()")[0];
        assert!(!l.code.contains("unwrap"));
        assert!(l.comment.contains("unwrap"));
    }

    #[test]
    fn blanks_string_contents() {
        let l = &scan("let s = \".unwrap()\";")[0];
        assert!(!l.code.contains("unwrap"));
        assert!(l.code.contains('"'));
    }

    #[test]
    fn block_comment_spans_lines() {
        let lines = scan("/* a\n.unwrap()\n*/ let y = 2;");
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[1].comment.contains("unwrap"));
        assert!(lines[2].code.contains("let y"));
    }

    #[test]
    fn char_literal_and_lifetime() {
        let l = &scan("fn f<'a>(c: char) { if c == '\"' {} }")[0];
        assert!(l.code.contains("'a"), "lifetime kept: {}", l.code);
        assert!(!l.code.contains('"'), "char quote blanked: {}", l.code);
    }

    #[test]
    fn raw_string_with_hashes() {
        let lines = scan("let s = r#\"has .unwrap() and \"quotes\"\"#; f()");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("f()"));
    }

    #[test]
    fn doc_lines_flagged() {
        let lines = scan("/// docs\npub fn x() {}");
        assert!(lines[0].doc);
        assert!(!lines[1].doc);
    }

    #[test]
    fn multiline_string_keeps_state() {
        let lines = scan("let s = \"abc\ndef.unwrap()\";\nlet z = 1;");
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[2].code.contains("let z"));
    }
}
