//! Fixture tests: each rule fires exactly once at the expected line on
//! a known-bad snippet, and a clean fixture stays silent. The fixtures
//! live under `tests/fixtures/` as plain text — they are never
//! compiled — and are linted under a fake `crates/core/src/` path so
//! every rule class (library, panic-free, docs-required) applies.

use minato_verify::{lint_source, LockOrder, Rule};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lints a fixture as if it were a core library file and asserts it
/// yields exactly one violation of `rule` at `line`.
fn assert_fires_once(name: &str, rule: Rule, line: usize) {
    let text = fixture(name);
    let out = lint_source("crates/core/src/fixture.rs", &text, &LockOrder::default());
    assert!(
        out.bad_allow_comments.is_empty(),
        "{name}: malformed allows: {:?}",
        out.bad_allow_comments
    );
    let hits: Vec<_> = out.violations.iter().filter(|v| v.rule == rule).collect();
    assert_eq!(
        hits.len(),
        1,
        "{name}: expected exactly one {rule} violation, got {:?}",
        out.violations
    );
    assert_eq!(
        hits[0].line, line,
        "{name}: {rule} fired at line {} instead of {line}",
        hits[0].line
    );
    assert_eq!(
        out.violations.len(),
        1,
        "{name}: unexpected extra violations: {:?}",
        out.violations
    );
}

#[test]
fn v1_unwrap_in_library_code() {
    assert_fires_once("v1_bad.rs", Rule::V1, 2);
}

#[test]
fn v2_allocation_in_hot_path() {
    assert_fires_once("v2_bad.rs", Rule::V2, 3);
}

#[test]
fn v3_blocking_call_under_lock() {
    assert_fires_once("v3_bad.rs", Rule::V3, 3);
}

#[test]
fn v4_undocumented_public_item() {
    assert_fires_once("v4_bad.rs", Rule::V4, 1);
}

#[test]
fn v5_unsafe_without_safety_comment() {
    assert_fires_once("v5_bad.rs", Rule::V5, 2);
}

/// V6 is scoped to the queue core: the same text fires under
/// `crates/core/src/queue/` and stays silent one directory up.
#[test]
fn v6_unjustified_ordering_in_queue_core() {
    let text = fixture("v6_bad.rs");
    let out = lint_source(
        "crates/core/src/queue/fixture.rs",
        &text,
        &LockOrder::default(),
    );
    let hits: Vec<_> = out
        .violations
        .iter()
        .filter(|v| v.rule == Rule::V6)
        .collect();
    assert_eq!(hits.len(), 1, "expected one V6 hit: {:?}", out.violations);
    assert_eq!(hits[0].line, 2);
    let out = lint_source("crates/core/src/fixture.rs", &text, &LockOrder::default());
    assert!(
        out.violations.iter().all(|v| v.rule != Rule::V6),
        "V6 must not fire outside the queue core: {:?}",
        out.violations
    );
}

#[test]
fn clean_fixture_is_silent() {
    let text = fixture("clean.rs");
    let out = lint_source("crates/core/src/fixture.rs", &text, &LockOrder::default());
    assert!(
        out.violations.is_empty(),
        "clean fixture must lint clean: {:?}",
        out.violations
    );
    assert!(out.bad_allow_comments.is_empty());
}

/// The bench crate is exempt from V1 (measurement harness) but not
/// from the other rules.
#[test]
fn bench_paths_skip_v1_only() {
    let text = fixture("v1_bad.rs");
    let out = lint_source("crates/bench/src/fixture.rs", &text, &LockOrder::default());
    assert!(
        out.violations.is_empty(),
        "bench code may unwrap: {:?}",
        out.violations
    );
    let text = fixture("v5_bad.rs");
    let out = lint_source("crates/bench/src/fixture.rs", &text, &LockOrder::default());
    assert_eq!(out.violations.len(), 1, "V5 still applies to bench code");
    assert_eq!(out.violations[0].rule, Rule::V5);
}
