//! Clean fixture: every rule stays silent on idiomatic code.

/// Option handling without panics.
pub fn documented(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

/// Condvar wait on the held guard is sanctioned (the wait releases the
/// mutex), and `drop` ends the guard's tracked lifetime.
pub fn wait_pattern(q: &Queue) {
    let mut g = q.inner.lock();
    q.not_empty.wait(&mut g);
    drop(g);
}

/// Hot path using the pool's sanctioned preallocation.
// minato-verify: hot-path
pub fn hot(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}

/// Raw pointer read with its safety contract stated.
pub fn deref(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    unsafe { *p }
}
