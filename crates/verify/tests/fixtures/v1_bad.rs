fn parse(x: Option<u32>) -> u32 {
    x.unwrap()
}
