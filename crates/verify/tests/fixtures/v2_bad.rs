// minato-verify: hot-path
fn assemble() {
    let v = Vec::new();
}
