fn drain(q: &Queue, d: Duration) {
    let g = q.state.lock();
    std::thread::sleep(d);
}
