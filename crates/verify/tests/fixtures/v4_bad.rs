pub fn undocumented() {}
