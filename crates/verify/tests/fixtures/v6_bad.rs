fn bump(&self) {
    self.head.fetch_add(1, Ordering::Relaxed);
}

fn publish(&self) {
    // ORDERING: Release — pairs with the consumer's Acquire load.
    self.seq.store(1, Ordering::Release);
}
