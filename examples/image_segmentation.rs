//! Image-segmentation scenario: 3D volumes through the Table 1 pipeline
//! (RandomCrop → RandomFlip → RandomBrightness → GaussianNoise → Cast),
//! comparing MinatoLoader against the PyTorch-style baseline on real
//! kernels over variable-sized volumes.
//!
//! Run with: `cargo run --release --example image_segmentation`

use minato::baselines::torch::{TorchConfig, TorchLoader};
use minato::core::prelude::*;
use minato::data::volume::{segmentation_pipeline, Volume3D};
use std::time::Instant;

fn dataset() -> FnDataset<Volume3D, impl Fn(usize) -> minato::core::error::Result<Volume3D>> {
    // KiTS19-like: volume sizes vary widely, so preprocessing cost does
    // too (the §3.2 size/time correlation).
    FnDataset::new(48, |i| {
        let side = 12 + (i * 7) % 36; // 12..48 voxels per side.
        Ok(Volume3D::generate([side, side, side], i as u64))
    })
    .with_size_hint(|i| {
        let side = (12 + (i * 7) % 36) as u64;
        side * side * side * 5
    })
}

fn main() {
    let pipeline = segmentation_pipeline([12, 12, 12]);

    println!("== MinatoLoader ==");
    let t0 = Instant::now();
    let loader = MinatoLoader::builder(dataset(), pipeline.clone())
        .batch_size(4)
        .initial_workers(3)
        .max_workers(6)
        .warmup_samples(12)
        .seed(7)
        .build()
        .expect("valid configuration");
    let mut voxels = 0usize;
    for batch in loader.iter() {
        voxels += batch.samples.iter().map(|v| v.len()).sum::<usize>();
    }
    let stats = loader.stats();
    println!(
        "  {} samples ({} slow-flagged) -> {voxels} voxels in {:.2?}",
        stats.samples_done,
        stats.slow_flagged,
        t0.elapsed()
    );
    println!(
        "  preprocess ms: avg {:.1} / p75 {:.1} / max {:.1}",
        stats.preprocess_ms.avg, stats.preprocess_ms.p75, stats.preprocess_ms.max
    );

    println!("== PyTorch-style baseline ==");
    let t0 = Instant::now();
    let torch = TorchLoader::new(
        dataset(),
        pipeline,
        TorchConfig {
            batch_size: 4,
            num_workers: 3,
            seed: 7,
            ..Default::default()
        },
    )
    .expect("valid configuration");
    let mut voxels = 0usize;
    for batch in torch.iter() {
        voxels += batch.samples.iter().map(|v| v.len()).sum::<usize>();
    }
    println!(
        "  {voxels} voxels in {:.2?} (strict in-order delivery)",
        t0.elapsed()
    );
}
