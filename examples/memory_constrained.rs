//! Memory-constrained training (§5.5 / Figure 10) on the simulator:
//! a 230 GB dataset trained under an 80 GB page-cache limit forces every
//! loader to hit storage continuously; MinatoLoader's decoupled queues
//! keep the GPUs fed anyway.
//!
//! Run with: `cargo run --release --example memory_constrained`

use minato::data::WorkloadSpec;
use minato::sim::{simulate_inorder, simulate_minato, ClassifyMode, DaliSimCfg, SimConfig};

fn main() {
    let mut cfg = SimConfig::config_b(WorkloadSpec::image_segmentation());
    cfg.dataset_replication = 8; // 29 GB KiTS19 → ~232 GB.
    cfg.memory_bytes = 80_000_000_000; // cgroup limit.
    cfg.max_batches = 1400; // ~2 epochs of the replicated dataset.

    let pytorch = simulate_inorder("PyTorch", &cfg, None);
    let dali = simulate_inorder(
        "DALI",
        &cfg,
        Some(DaliSimCfg {
            speedup: 10.0,
            queue_depth: 2,
        }),
    );
    let minato = simulate_minato("Minato", &cfg, ClassifyMode::Timeout);

    println!("3D-UNet, 232 GB dataset, 80 GB page cache, 8×V100:\n");
    for r in [&pytorch, &dali, &minato] {
        println!(
            "{:8}  time {:6.0}s  GPU {:5.1}%  disk {:6.1} GB  cache {:6.1} GB",
            r.name,
            r.train_time_s,
            r.gpu_util_pct,
            r.bytes_from_disk as f64 / 1e9,
            r.bytes_from_cache as f64 / 1e9,
        );
        println!("          disk read {}", r.disk_series.sparkline(56));
    }
    println!(
        "\npaper shape: PyTorch ≈650s @57% GPU, DALI ≈500s @81%, Minato ≈330s @82%; \
         Minato sustains high, stable disk reads."
    );
    assert!(minato.train_time_s < pytorch.train_time_s);
}
