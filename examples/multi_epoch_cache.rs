//! Multi-epoch training with the cross-epoch sample cache on vs off.
//!
//! Epoch 1 always pays full preprocessing. With the cache enabled,
//! epochs 2+ serve almost every sample from memory — slow samples
//! included, which the cost-aware eviction policy keeps resident
//! longest — so repeat epochs run at near-lookup speed.
//!
//! Run with: `cargo run --release --example multi_epoch_cache`

use minato::core::prelude::*;
use std::time::{Duration, Instant};

const N: usize = 256;
const EPOCHS: usize = 3;

/// Mixed-cost pipeline: every 8th sample is ~20x slower.
fn pipeline() -> Pipeline<u32> {
    Pipeline::new(vec![
        fn_transform("normalize", |x: u32| Ok(x % 97)),
        fn_transform("augment", |x: u32| {
            if x.is_multiple_of(8) {
                std::thread::sleep(Duration::from_millis(6));
            } else {
                std::thread::sleep(Duration::from_micros(300));
            }
            Ok(x)
        }),
    ])
}

/// Runs a full multi-epoch pass and prints per-epoch wall time; returns
/// total wall time.
fn run(label: &str, cache_budget: u64) -> f64 {
    let dataset = VecDataset::new((0..N as u32).collect::<Vec<_>>());
    let mut builder = MinatoLoader::builder(dataset, pipeline())
        .batch_size(16)
        .epochs(EPOCHS)
        .seed(42)
        .initial_workers(4)
        .max_workers(8)
        .queue_capacity(32)
        .timeout_policy(TimeoutPolicy::Fixed(Duration::from_millis(2)));
    if cache_budget > 0 {
        builder = builder
            .cache_budget_bytes(cache_budget)
            .cache_policy(EvictionPolicy::CostAware)
            .cache_shards(4);
    }
    let loader = builder.build().expect("valid configuration");

    let t0 = Instant::now();
    let mut left = [N; EPOCHS];
    let mut epoch_ms = [0.0f64; EPOCHS];
    let mut delivered = 0usize;
    for batch in loader.iter() {
        for m in &batch.meta {
            delivered += 1;
            left[m.epoch] -= 1;
            if left[m.epoch] == 0 {
                epoch_ms[m.epoch] = t0.elapsed().as_secs_f64() * 1e3;
            }
        }
    }
    assert_eq!(delivered, N * EPOCHS);

    println!("== {label} ==");
    let mut prev = 0.0;
    for (e, done) in epoch_ms.iter().enumerate() {
        println!("  epoch {}: {:>6.0} ms", e + 1, done - prev);
        prev = *done;
    }
    let stats = loader.stats();
    match stats.cache {
        Some(c) => println!(
            "  hit rate {:.1}% ({} hits / {} lookups), {} pipeline executions, \
             {} cached entries ({} bytes of {} budget)",
            c.hit_rate() * 100.0,
            c.hits,
            c.lookups(),
            stats.samples_done,
            c.entries,
            c.bytes,
            c.budget_bytes
        ),
        None => println!("  cache off: {} pipeline executions", stats.samples_done),
    }
    prev
}

fn main() {
    let off = run("cache off (default)", 0);
    let on = run("cache on (64 MiB, cost-aware)", 64 << 20);
    println!(
        "\ntotal: {off:.0} ms off vs {on:.0} ms on ({:.2}x)",
        off / on
    );
}
