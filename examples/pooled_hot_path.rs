//! The zero-allocation hot path: buffer pooling + in-place transform
//! execution on the volumetric segmentation pipeline.
//!
//! With `pool_budget_bytes` set, the loader runs every stage through
//! `Transform::apply_mut` (shape-changing stages draw output buffers
//! from the pool), and each delivered batch hands its sample buffers
//! back when the training loop drops it — so at steady state sample
//! memory recirculates instead of churning through malloc/free.
//!
//! Run with: `cargo run --release --example pooled_hot_path`

use minato::core::prelude::*;
use minato::data::volume::{segmentation_pipeline, Volume3D};

fn main() {
    let n = 96usize;
    let dataset = FnDataset::new(n, |i| {
        // Variable-sized CT volumes: 16³ – 40³ voxels (§3.2 size spread).
        let d = 16 + (i % 4) * 8;
        Ok(Volume3D::generate([d, d, d], i as u64))
    });
    let loader = MinatoLoader::builder(dataset, segmentation_pipeline([12, 12, 12]))
        .batch_size(8)
        .initial_workers(3)
        .max_workers(4)
        .pool_budget_bytes(256 << 20) // The knob that turns pooling on.
        .build()
        .expect("valid configuration");

    let mut samples = 0usize;
    let mut voxel_bytes = 0u64;
    for batch in loader.iter() {
        samples += batch.len();
        voxel_bytes += batch.samples.iter().map(Volume3D::nbytes).sum::<u64>();
        // The batch drops here — its buffers flow back into the pool and
        // become the next samples' memory.
    }
    assert_eq!(samples, n);

    let stats = loader.stats();
    let pool = stats.pool.expect("pooling enabled").combined();
    println!(
        "delivered {samples} samples ({:.1} MiB of voxels)",
        voxel_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "pool: {:.1}% hit rate, {} buffers recycled, {} dropped, {:.1} MiB resident",
        pool.hit_rate() * 100.0,
        pool.recycled,
        pool.dropped,
        pool.bytes as f64 / (1 << 20) as f64,
    );
    println!(
        "trace: pool hit% {}",
        loader.trace().pool_hit_pct.sparkline(40)
    );
    assert!(
        pool.recycled > 0,
        "the recycle loop must turn: crop inputs + dropped batches return buffers"
    );
}
