//! Quickstart: drop-in MinatoLoader usage on an in-memory dataset.
//!
//! Run with: `cargo run --example quickstart`

use minato::core::prelude::*;
use std::time::Duration;

fn main() {
    // 1. A dataset: anything random-access. Here, 256 integers.
    let dataset = VecDataset::new((0..256u32).collect::<Vec<_>>());

    // 2. A preprocessing pipeline: ordered transforms. The second one is
    //    artificially slow for every 8th sample, the pathology the paper
    //    targets.
    let pipeline = Pipeline::new(vec![
        fn_transform("normalize", |x: u32| Ok(x % 97)),
        fn_transform("augment", |x: u32| {
            if x.is_multiple_of(8) {
                std::thread::sleep(Duration::from_millis(8));
            } else {
                std::thread::sleep(Duration::from_micros(300));
            }
            Ok(x)
        }),
        fn_transform("to-tensor", Ok),
    ]);

    // 3. The loader: PyTorch-DataLoader-shaped builder.
    let loader = MinatoLoader::builder(dataset, pipeline)
        .batch_size(16)
        .initial_workers(4)
        .max_workers(8)
        .timeout_policy(TimeoutPolicy::Fixed(Duration::from_millis(2)))
        .seed(42)
        .build()
        .expect("valid configuration");

    // 4. Iterate batches as they become ready; slow samples never block
    //    batch construction.
    let mut total = 0;
    let mut slow = 0;
    for (i, batch) in loader.iter().enumerate() {
        total += batch.len();
        slow += batch.slow_count();
        if i < 4 {
            println!(
                "batch {i}: {} samples, {} slow, {} raw bytes",
                batch.len(),
                batch.slow_count(),
                batch.bytes()
            );
        }
    }
    let stats = loader.stats();
    println!("\ndelivered {total} samples, {slow} took the slow path");
    println!(
        "loader stats: {} preprocessed, slow fraction {:.2}, timeout {:?}",
        stats.samples_done, stats.slow_fraction, stats.timeout
    );
    assert_eq!(total, 256);
}
