//! Kill a training run mid-epoch, resume it from a checkpoint, and
//! verify exactly-once delivery across the crash.
//!
//! The loader snapshots its resumable state — sampler stream, delivery
//! watermark, balancer estimator, role budgets — into a small
//! serializable [`LoaderCheckpoint`]. A resumed run replays the
//! original seeded ticket stream minus what was already delivered;
//! batches that were in flight (queued but never popped) when the
//! process died are simply re-run, so nothing is lost and nothing is
//! delivered twice.
//!
//! Run with: `cargo run --release --example resume_after_crash`

use minato::core::prelude::*;
use std::collections::BTreeSet;
use std::time::Duration;

const N: usize = 192;
const EPOCHS: usize = 2;
const KILL_AFTER_BATCHES: usize = 9;

/// Mixed-cost pipeline: every 8th sample is ~15x slower.
fn pipeline() -> Pipeline<u32> {
    Pipeline::new(vec![
        fn_transform("normalize", |x: u32| Ok(x % 97)),
        fn_transform("augment", |x: u32| {
            if x.is_multiple_of(8) {
                std::thread::sleep(Duration::from_millis(3));
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
            Ok(x)
        }),
    ])
}

fn builder() -> MinatoLoaderBuilder<VecDataset<u32>> {
    let dataset = VecDataset::new((0..N as u32).collect::<Vec<_>>());
    MinatoLoader::builder(dataset, pipeline())
        .batch_size(16)
        .epochs(EPOCHS)
        .seed(42)
        .initial_workers(4)
        .max_workers(8)
        .timeout_policy(TimeoutPolicy::Fixed(Duration::from_millis(1)))
        .checkpoint(true)
}

fn main() {
    // Phase 1: train for a while, checkpoint, then "crash" (drop the
    // loader with batches still queued — those are intentionally lost).
    let loader = builder().build().expect("valid configuration");
    let mut delivered_before = BTreeSet::new();
    for _ in 0..KILL_AFTER_BATCHES {
        let Some(batch) = loader.next_batch(0) else {
            break;
        };
        delivered_before.extend(batch.meta.iter().map(|m| m.seq));
    }
    let ckpt = loader.checkpoint().expect("checkpointing enabled");
    let bytes = ckpt.encode();
    drop(loader); // The crash.
    println!(
        "killed after {} of {} samples; checkpoint = {} bytes \
         (watermark {}, {} delivered above it)",
        delivered_before.len(),
        N * EPOCHS,
        bytes.len(),
        ckpt.watermark,
        ckpt.delivered_above.len(),
    );

    // Phase 2: restart from the serialized checkpoint and finish.
    let restored = LoaderCheckpoint::decode(&bytes).expect("intact checkpoint");
    let resumed = builder()
        .resume_from(restored)
        .build()
        .expect("valid configuration");
    let mut delivered_after = BTreeSet::new();
    while let Some(batch) = resumed.next_batch(0) {
        delivered_after.extend(batch.meta.iter().map(|m| m.seq));
    }
    println!(
        "resumed run delivered {} samples (timeout restored to {:?})",
        delivered_after.len(),
        resumed.stats().timeout,
    );

    // Exactly-once across the crash: disjoint halves, complete union.
    assert!(delivered_before.is_disjoint(&delivered_after));
    let union = delivered_before.len() + delivered_after.len();
    assert_eq!(union, N * EPOCHS);
    println!(
        "exactly-once verified: {} + {} = {} seqs, no duplicates",
        delivered_before.len(),
        delivered_after.len(),
        union
    );
}
