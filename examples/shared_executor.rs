//! Multi-tenant training: two loaders sharing one elastic executor pool.
//!
//! Instead of each loader spawning its own fixed thread complement, a
//! [`SharedExecutor`] owns one role-fluid worker pool and every loader
//! registers its fast/slow/batch roles as a *tenant*. Workers bid for
//! roles by budget deficit across tenants, so a job whose slow stage
//! falls behind pulls capacity from a job with idle budget — the
//! multi-job training scenario with one right-sized pool instead of two
//! over-provisioned ones.
//!
//! Run with: `cargo run --release --example shared_executor`

use minato::core::loader::ExecutorConfig;
use minato::core::prelude::*;
use std::time::{Duration, Instant};

const POOL_THREADS: usize = 6;

/// Mixed-cost pipeline; `slow_every`-th samples sleep well past the
/// classification timeout.
fn pipeline(slow_every: u32, slow_ms: u64) -> Pipeline<u32> {
    Pipeline::new(vec![fn_transform("augment", move |x: u32| {
        if x.is_multiple_of(slow_every) {
            std::thread::sleep(Duration::from_millis(slow_ms));
        } else {
            std::thread::sleep(Duration::from_micros(300));
        }
        Ok(x)
    })])
}

fn tenant(
    pool: &SharedExecutor,
    name: &'static str,
    n: u32,
    slow_every: u32,
    slow_ms: u64,
) -> std::thread::JoinHandle<(&'static str, usize, u64)> {
    let pool = pool.clone();
    std::thread::spawn(move || {
        let dataset = VecDataset::new((0..n).collect::<Vec<_>>());
        let loader = MinatoLoader::builder(dataset, pipeline(slow_every, slow_ms))
            .batch_size(16)
            .initial_workers(2)
            .max_workers(3)
            .slow_workers(1)
            .timeout_policy(TimeoutPolicy::Fixed(Duration::from_millis(2)))
            .executor(ExecutorConfig::Shared(pool))
            .build()
            .expect("tenant builds");
        let mut delivered = 0usize;
        for batch in loader.iter() {
            delivered += batch.len();
        }
        let steals = loader
            .stats()
            .exec
            .map(|e| e.roles.iter().map(|r| r.steals).sum::<u64>())
            .unwrap_or(0);
        (name, delivered, steals)
    })
}

fn main() {
    let pool = SharedExecutor::new(POOL_THREADS);
    println!(
        "shared pool: {} role-fluid workers serving two training jobs\n",
        pool.threads()
    );
    let t0 = Instant::now();
    // Job A is slow-heavy (every 4th sample defers); job B is light.
    let a = tenant(&pool, "job-a (slow-heavy)", 192, 4, 6);
    let b = tenant(&pool, "job-b (light)", 256, 64, 6);
    for h in [a, b] {
        let (name, delivered, steals) = h.join().expect("tenant finishes");
        println!("{name}: delivered {delivered} samples (steals into its roles: {steals})");
    }
    println!(
        "\nboth jobs done in {:.0} ms on {POOL_THREADS} shared workers",
        t0.elapsed().as_secs_f64() * 1e3
    );
    drop(pool); // Last handle: shuts the pool down and joins its workers.
}
