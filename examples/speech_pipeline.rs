//! Speech-recognition scenario: the Table 1 audio pipeline with the
//! paper's LightStep/HeavyStep microbenchmark structure — every 5th clip
//! pays a much heavier enhancement cost, which MinatoLoader classifies
//! and defers without stalling batches. Audio/transcript pairing survives
//! the reordering (§6).
//!
//! Run with: `cargo run --release --example speech_pipeline`

use minato::core::prelude::*;
use minato::data::audio::{speech_pipeline, AudioClip};
use std::time::Instant;

fn main() {
    // LibriSpeech-like: short utterances; every 5th is "heavy" via a
    // much larger HeavyStep pass count — we encode that by generating
    // longer clips for those indices (more frames → more passes work).
    let dataset = FnDataset::new(60, |i| {
        let seconds = if i % 5 == 0 { 2.0 } else { 0.4 };
        Ok(AudioClip::generate(seconds, 16_000, i as u64))
    });
    // LightStep 3 passes; HeavyStep 40 passes (≈ the paper's 1:6+ cost
    // ratio at this clip length).
    let pipeline = speech_pipeline(3, 40);

    let t0 = Instant::now();
    let loader = MinatoLoader::builder(dataset, pipeline)
        .batch_size(6)
        .initial_workers(3)
        .max_workers(6)
        .slow_workers(2)
        .warmup_samples(15)
        .seed(3)
        .build()
        .expect("valid configuration");

    let mut clips = 0usize;
    let mut transcripts_ok = true;
    for batch in loader.iter() {
        clips += batch.len();
        // §6: the audio-text pair must stay aligned under reordering.
        for (clip, meta) in batch.samples.iter().zip(&batch.meta) {
            let reference = AudioClip::generate(
                if meta.index % 5 == 0 { 2.0 } else { 0.4 },
                16_000,
                meta.index as u64,
            );
            transcripts_ok &= clip.transcript == reference.transcript;
        }
    }
    let stats = loader.stats();
    println!(
        "processed {clips} clips in {:.2?}; {} classified slow \
         (the adaptive P75 cutoff flags the heavy fifth plus the longest light clips)",
        t0.elapsed(),
        stats.slow_flagged
    );
    println!(
        "audio-text pairing preserved under reordering: {}",
        if transcripts_ok { "yes" } else { "NO (bug!)" }
    );
    println!(
        "preprocess ms: avg {:.1} p75 {:.1} p90 {:.1} max {:.1}",
        stats.preprocess_ms.avg,
        stats.preprocess_ms.p75,
        stats.preprocess_ms.p90,
        stats.preprocess_ms.max
    );
    assert!(transcripts_ok);
    assert_eq!(clips, 60);
}
