//! Offline stand-in for `criterion`.
//!
//! Provides `Criterion`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros so `cargo bench` runs without the registry.
//! Measurement is a simple calibrated loop (median-free mean over a
//! fixed measurement window) — adequate for spotting order-of-magnitude
//! regressions, not a statistics suite.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for measurement of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark and print its mean per-iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time / self.sample_size as u32,
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
            // Only the first sample warms up.
            b.warm_up = Duration::ZERO;
        }
        let mean_ns = b.samples.iter().sum::<f64>() / b.samples.len().max(1) as f64;
        println!(
            "{id:<40} {:>12.1} ns/iter ({} samples)",
            mean_ns,
            b.samples.len()
        );
        self
    }
}

/// Handed to benchmark closures; runs the measured routine.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine` repeatedly for this sample's time budget and
    /// record the mean per-iteration nanoseconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        let total = start.elapsed();
        if iters > 0 {
            self.samples.push(total.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Declare a group of benchmark functions. Supports both the simple
/// `criterion_group!(name, f1, f2)` and the `name = ..; config = ..;
/// targets = ..` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }
}
