//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the poison-free API shape (`lock()` returns a guard, not a
//! `Result`; condvar waits take `&mut MutexGuard`). Poisoned std locks
//! are recovered transparently — a panicking worker must not deadlock
//! the loader's control plane.
//!
//! # Lock-order instrumentation
//!
//! Built with `RUSTFLAGS="--cfg minato_lock_graph"`, every `lock()`
//! records its acquisition site (`#[track_caller]`) in a per-thread
//! held-lock set and feeds a global lock-order graph. Acquiring lock B
//! while holding lock A inserts the edge A→B; if the graph already
//! knows a path B→…→A (some thread acquired them in the reverse
//! order), the acquisition panics naming both conflicting acquisition
//! sites — turning a would-be deadlock into a deterministic failure at
//! the earliest thread to complete the inversion. `try_lock` marks its
//! guard as held but inserts no edges: a non-blocking acquisition
//! cannot be the inner edge of a deadlock cycle. Dropping a `Mutex`
//! purges its node so reused addresses cannot alias old edges.

use std::fmt;
use std::time::{Duration, Instant};

#[cfg(minato_lock_graph)]
mod lock_graph {
    //! Global lock-order graph + per-thread held-lock sets. Internals
    //! use `std::sync` directly: instrumenting the instrumentation
    //! would recurse.

    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::{Mutex, OnceLock};

    /// Sites recorded for one ordered edge `from → to`: where `from`
    /// was acquired (and still held) and where `to` was then taken.
    #[derive(Clone)]
    struct EdgeSites {
        held_site: &'static Location<'static>,
        acq_site: &'static Location<'static>,
    }

    #[derive(Default)]
    struct Graph {
        /// `edges[a][b]` = sites of the first observed a-held→b-acquired.
        edges: HashMap<usize, HashMap<usize, EdgeSites>>,
    }

    fn graph() -> &'static Mutex<Graph> {
        static G: OnceLock<Mutex<Graph>> = OnceLock::new();
        G.get_or_init(Mutex::default)
    }

    fn graph_lock() -> std::sync::MutexGuard<'static, Graph> {
        match graph().lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    thread_local! {
        /// Locks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<(usize, &'static Location<'static>)>> =
            const { RefCell::new(Vec::new()) };
    }

    /// Depth-first search for a path `from → … → to`, returning the
    /// sites of the path's final edge (the one that lands on `to`).
    fn find_path(g: &Graph, from: usize, to: usize) -> Option<EdgeSites> {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(n) = stack.pop() {
            let Some(next) = g.edges.get(&n) else {
                continue;
            };
            if let Some(sites) = next.get(&to) {
                return Some(sites.clone());
            }
            for &m in next.keys() {
                if !seen.contains(&m) {
                    seen.push(m);
                    stack.push(m);
                }
            }
        }
        None
    }

    /// Records a blocking acquisition of the lock at `addr` from
    /// `site`: checks every held lock for an established reverse
    /// ordering (panicking with both conflicting sites on inversion),
    /// inserts the new edges, and pushes the lock onto the held set.
    pub(crate) fn acquire_blocking(addr: usize, site: &'static Location<'static>) {
        let held: Vec<(usize, &'static Location<'static>)> = HELD.with(|h| h.borrow().clone());
        if !held.is_empty() {
            let mut g = graph_lock();
            for &(held_addr, held_site) in &held {
                if held_addr == addr {
                    continue; // Re-acquisition: std will deadlock regardless.
                }
                if let Some(rev) = find_path(&g, addr, held_addr) {
                    drop(g);
                    panic!(
                        "lock-order inversion: acquiring lock {addr:#x} at {site} \
                         while holding lock {held_addr:#x} acquired at {held_site}, \
                         but the reverse order is already established \
                         (acquired at {} while holding the lock acquired at {})",
                        rev.acq_site, rev.held_site
                    );
                }
                g.edges
                    .entry(held_addr)
                    .or_default()
                    .entry(addr)
                    .or_insert(EdgeSites {
                        held_site,
                        acq_site: site,
                    });
            }
        }
        acquire_nonblocking(addr, site);
    }

    /// Records a non-blocking (`try_lock`) acquisition: the lock joins
    /// the held set (it can be the *outer* lock of an inversion) but
    /// contributes no edges — a non-blocking attempt cannot deadlock.
    pub(crate) fn acquire_nonblocking(addr: usize, site: &'static Location<'static>) {
        let _ = HELD.try_with(|h| h.borrow_mut().push((addr, site)));
    }

    /// Removes one held entry for `addr` (the most recent, so nested
    /// same-lock guards in unrelated scopes unwind correctly).
    pub(crate) fn release(addr: usize) {
        let _ = HELD.try_with(|h| {
            let mut held = h.borrow_mut();
            if let Some(p) = held.iter().rposition(|&(a, _)| a == addr) {
                held.remove(p);
            }
        });
    }

    /// Purges a dropped mutex's node: its address can be reused by an
    /// unrelated lock, which must not inherit the old edges.
    pub(crate) fn purge(addr: usize) {
        let mut g = graph_lock();
        g.edges.remove(&addr);
        for next in g.edges.values_mut() {
            next.remove(&addr);
        }
    }
}

/// Mutual exclusion primitive. `lock()` never fails.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        #[cfg(minato_lock_graph)]
        {
            // With the graph enabled `Mutex` has a `Drop` impl, so the
            // field cannot be moved out directly: purge the node by
            // hand, then read the field from a `ManuallyDrop` self.
            self.graph_purge();
            let this = std::mem::ManuallyDrop::new(self);
            // SAFETY: `this` is ManuallyDrop, so `inner` is read exactly
            // once and the (already hand-run) Drop never runs again.
            let inner = unsafe { std::ptr::read(&this.inner) };
            return match inner.into_inner() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            };
        }
        #[cfg(not(minato_lock_graph))]
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Stable address identifying this lock in the lock-order graph.
    #[cfg(minato_lock_graph)]
    fn graph_addr(&self) -> usize {
        &self.inner as *const std::sync::Mutex<T> as *const () as usize
    }

    /// Drops this lock's node from the lock-order graph.
    #[cfg(minato_lock_graph)]
    fn graph_purge(&self) {
        lock_graph::purge(self.graph_addr());
    }

    /// Acquire the lock, blocking until available.
    ///
    /// Under `--cfg minato_lock_graph`, panics instead of deadlocking
    /// when this acquisition completes a lock-order inversion; the
    /// message names both conflicting acquisition sites.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        // Check/record *before* blocking, so the thread that completes
        // an inversion panics instead of deadlocking inside std.
        #[cfg(minato_lock_graph)]
        lock_graph::acquire_blocking(self.graph_addr(), std::panic::Location::caller());
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            inner: Some(g),
            #[cfg(minato_lock_graph)]
            addr: self.graph_addr(),
        }
    }

    /// Acquire the lock only if it is free right now.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(minato_lock_graph)]
        lock_graph::acquire_nonblocking(self.graph_addr(), std::panic::Location::caller());
        Some(MutexGuard {
            inner: Some(g),
            #[cfg(minato_lock_graph)]
            addr: self.graph_addr(),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(minato_lock_graph)]
impl<T: ?Sized> Drop for Mutex<T> {
    fn drop(&mut self) {
        self.graph_purge();
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so condvar waits can temporarily move
/// the std guard out without unsafe code; the option is always `Some`
/// outside those windows.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    #[cfg(minato_lock_graph)]
    addr: usize,
}

#[cfg(minato_lock_graph)]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        lock_graph::release(self.addr);
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Whether a timed condvar wait ended by timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with the parking_lot calling convention.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or the deadline `until` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        until: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if until <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, until - now)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn wait_until_past_deadline_times_out_immediately() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now());
        assert!(res.timed_out());
    }
}
