//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the poison-free API shape (`lock()` returns a guard, not a
//! `Result`; condvar waits take `&mut MutexGuard`). Poisoned std locks
//! are recovered transparently — a panicking worker must not deadlock
//! the loader's control plane.

use std::fmt;
use std::time::{Duration, Instant};

/// Mutual exclusion primitive. `lock()` never fails.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(g) }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so condvar waits can temporarily move
/// the std guard out without unsafe code; the option is always `Some`
/// outside those windows.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Whether a timed condvar wait ended by timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with the parking_lot calling convention.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or the deadline `until` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        until: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if until <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, until - now)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn wait_until_past_deadline_times_out_immediately() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now());
        assert!(res.timed_out());
    }
}
