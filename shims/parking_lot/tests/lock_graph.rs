//! Lock-order detector tests; compiled only under
//! `RUSTFLAGS="--cfg minato_lock_graph"`.
#![cfg(minato_lock_graph)]

use parking_lot::Mutex;
use std::sync::mpsc;
use std::sync::Arc;

/// Two threads acquiring `{A, B}` in opposite orders: the second thread
/// to nest must panic instead of deadlocking, and the panic message
/// must name both conflicting acquisition sites.
#[test]
fn inversion_panics_with_both_sites() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));

    // Thread 1 establishes A→B and fully releases before thread 2
    // starts, so the test never races toward a real deadlock.
    let (t1_done_tx, t1_done_rx) = mpsc::channel();
    let t1 = {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let ga = a.lock(); // site: A held
            let gb = b.lock(); // site: B acquired under A
            drop(gb);
            drop(ga);
            t1_done_tx.send(()).expect("main thread alive");
        })
    };
    t1_done_rx.recv().expect("thread 1 completed its ordering");
    t1.join().expect("thread 1 exits cleanly");

    let t2 = {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let gb = b.lock(); // B held...
            let ga = a.lock(); // ...A under B: inversion, must panic.
            drop(ga);
            drop(gb);
        })
    };
    let err = t2.join().expect_err("inversion must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string");
    assert!(
        msg.contains("lock-order inversion"),
        "unexpected panic message: {msg}"
    );
    // Both sides of the conflict are named: thread 2's acquisition and
    // the site that established the reverse order in thread 1. All four
    // sites live in this file.
    let sites = msg.matches("lock_graph.rs:").count();
    assert!(
        sites >= 2,
        "panic must name both acquisition sites, got: {msg}"
    );
}

/// Consistent nesting order across threads never panics.
#[test]
fn consistent_order_is_silent() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        handles.push(std::thread::spawn(move || {
            for _ in 0..100 {
                let ga = a.lock();
                let gb = b.lock();
                drop(gb);
                drop(ga);
            }
        }));
    }
    for h in handles {
        h.join().expect("consistent order must not panic");
    }
}

/// `try_lock` is non-blocking: holding its guard while taking another
/// lock records an edge from the held lock, but a try_lock attempt
/// itself never panics even against the established order.
#[test]
fn try_lock_never_panics() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    {
        let ga = a.lock();
        let gb = b.lock(); // Establish A→B.
        drop(gb);
        drop(ga);
    }
    let gb = b.lock();
    let ga = a.try_lock(); // Reverse order, but non-blocking: no panic.
    assert!(ga.is_some());
    drop(ga);
    drop(gb);
}
