//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! suites use: the `proptest!` macro (including `#![proptest_config]`),
//! range / `any` / `collection::vec` / `sample::subsequence` strategies,
//! and `prop_assert*` macros. Unlike upstream proptest there is no
//! shrinking and no persistence file: every test function derives its
//! case seeds from a fixed constant, so runs are fully deterministic —
//! two consecutive `cargo test` invocations execute byte-identical
//! inputs.

pub mod test_runner {
    //! Runner configuration.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast while
            // still exercising a meaningful input spread.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Random, Rng};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_strategy_for_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy yielding a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for [`any`](crate::arbitrary::any).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Construct (used by [`crate::arbitrary::any`]).
        pub fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    // Used by float strategies below; keep the helper close to the trait.
    pub(crate) fn full_range_float<T>(rng: &mut StdRng) -> T
    where
        T: Random + core::ops::Mul<Output = T> + core::ops::Sub<Output = T> + From<f32> + Copy,
    {
        // Spread unit samples over a wide but finite band; properties in
        // this workspace always constrain floats with explicit ranges,
        // so `any::<f64>()` only needs to be "some finite float".
        let unit = T::random_from(rng);
        let scale: T = <T as From<f32>>::from(2e6f32);
        let half: T = <T as From<f32>>::from(0.5f32);
        (unit - half) * scale
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use rand::rngs::StdRng;
    use rand::{Random, Rng};

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    <$t as Random>::random_from(rng)
                }
            }
        )*};
    }
    impl_arbitrary_prim!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            crate::strategy::full_range_float::<f64>(rng)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            crate::strategy::full_range_float::<f32>(rng)
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            // Printable ASCII keeps generated text debuggable.
            rng.random_range(0x20u32..0x7f) as u8 as char
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any::new()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        pub(crate) fn pick(&self, rng: &mut StdRng) -> usize {
            assert!(self.lo < self.hi, "empty size range");
            rng.random_range(self.lo..self.hi)
        }
    }

    /// Strategy generating `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `element` and length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling from fixed pools.

    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy yielding order-preserving subsequences of a fixed pool.
    #[derive(Debug, Clone)]
    pub struct Subsequence<T: Clone> {
        pool: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample_value(&self, rng: &mut StdRng) -> Vec<T> {
            let want = self.size.pick(rng).min(self.pool.len());
            // Reservoir-free selection: walk the pool once, keeping each
            // element with the exact probability needed to end at `want`.
            let mut out = Vec::with_capacity(want);
            let mut remaining_pool = self.pool.len();
            let mut remaining_want = want;
            for item in &self.pool {
                if remaining_want == 0 {
                    break;
                }
                let keep = rng.random_range(0..remaining_pool) < remaining_want;
                if keep {
                    out.push(item.clone());
                    remaining_want -= 1;
                }
                remaining_pool -= 1;
            }
            out
        }
    }

    /// Order-preserving subsequence of `pool` with length drawn from `size`.
    pub fn subsequence<T: Clone>(pool: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            pool,
            size: size.into(),
        }
    }

    /// Strategy yielding one element of a fixed pool.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.0.len());
            self.0[i].clone()
        }
    }

    /// Uniform choice from `pool`.
    pub fn select<T: Clone>(pool: Vec<T>) -> Select<T> {
        Select(pool)
    }
}

#[doc(hidden)]
pub mod __rt {
    //! Internals the macros expand to. Not a public API.
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Per-case seed: a fixed golden-ratio constant mixed with the case
    /// index, so each case differs but every run is identical.
    pub fn case_seed(fn_seed: u64, case: u64) -> u64 {
        fn_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(case.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// Stable non-cryptographic hash of the property name (FNV-1a), used
    /// to decorrelate the seed streams of different properties.
    pub fn fn_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Property-test entry macro. Mirrors upstream `proptest!` syntax for
/// `fn name(pat in strategy, ..) { body }` items with an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let __fn_seed = $crate::__rt::fn_seed(stringify!($name));
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    $crate::__rt::case_seed(__fn_seed, __case),
                );
                $(let $pat = $crate::strategy::Strategy::sample_value(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// `assert!` that names the failing property condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

pub mod prelude {
    //! Glob import mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u8..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_cases_accepted(b in any::<bool>()) {
            let _ = b;
        }
    }

    #[test]
    fn full_length_subsequence_is_identity() {
        let s = crate::sample::subsequence((0..40u64).collect::<Vec<_>>(), 40);
        let mut rng = StdRng::seed_from_u64(1);
        let v = s.sample_value(&mut rng);
        assert_eq!(v, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn subsequence_preserves_order() {
        let s = crate::sample::subsequence((0..100u64).collect::<Vec<_>>(), 10..30);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = s.sample_value(&mut rng);
            assert!((10..30).contains(&v.len()));
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        // Same fn seed + case index must give the same stream.
        let a = crate::__rt::case_seed(crate::__rt::fn_seed("p"), 3);
        let b = crate::__rt::case_seed(crate::__rt::fn_seed("p"), 3);
        assert_eq!(a, b);
    }
}
