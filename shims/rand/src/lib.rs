//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the (small) slice of the rand 0.9 API the workspace uses: a seedable
//! deterministic [`rngs::StdRng`] built on SplitMix64, the
//! `random`/`random_range`/`random_bool` methods, and
//! [`seq::SliceRandom::shuffle`]. Determinism is a feature here — every
//! generator is explicitly seeded, so test and simulation outputs are
//! reproducible across runs and machines.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose output is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw output.
pub trait Random: Sized {
    /// Draw one uniform value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let v = self.start + <$t as Random>::random_from(rng) * (self.end - self.start);
                // lo + f*(hi-lo) can round up to exactly `hi`; the range
                // contract excludes it.
                v.min(self.end.next_down())
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Random>::random_from(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its natural domain ([0, 1) for floats).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// Uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Alias kept so `use rand::RngExt` and `use rand::Rng` both work.
pub use Rng as RngExt;

pub mod rngs {
    //! Concrete generators.

    /// Deterministic SplitMix64 generator. Statistical quality is ample
    /// for workload synthesis and tests; output is a pure function of
    /// the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use crate::RngCore;

    /// Shuffling for slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permute the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-2.5..4.5f64);
            assert!((-2.5..4.5).contains(&y));
            let z = rng.random_range(5..=5usize);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn float_range_never_returns_upper_bound() {
        // 0.4..9.0f32: neither bound exactly representable; rounding in
        // lo + f*(hi-lo) must not leak `hi`.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200_000 {
            let x = rng.random_range(0.4..9.0f32);
            assert!(x < 9.0, "half-open range returned its upper bound");
            // One-ULP-wide range: the only valid sample is `start`.
            let y = rng.random_range(1.0..1.0f64.next_up());
            assert_eq!(y, 1.0);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = rng.random::<f32>();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
