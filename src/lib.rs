//! Umbrella crate re-exporting the MinatoLoader workspace.
pub use minato_baselines as baselines;
pub use minato_cache as cache;
pub use minato_core as core;
pub use minato_data as data;
pub use minato_exec as exec;
pub use minato_metrics as metrics;
pub use minato_nn as nn;
pub use minato_sim as sim;
pub use minato_trace as trace;
