//! Cross-crate integration tests: the real loaders over the calibrated
//! synthetic workloads, compared against each other and the simulator.

use minato::baselines::torch::{TorchConfig, TorchLoader};
use minato::core::prelude::*;
use minato::data::{synthetic_dataset, work_pipeline_with_mode, WorkMode, WorkloadSpec};
use std::collections::HashMap;
use std::time::Duration;

/// A scaled-down speech workload: the work pipeline burns real CPU
/// proportional to the paper-calibrated per-sample costs.
fn speech_small() -> (WorkloadSpec, f64) {
    let mut wl = WorkloadSpec::speech(3.0);
    wl.n_samples = 40;
    (wl, 0.002) // 1/500 scale: heavy ≈ 6 ms, light ≈ 1 ms.
}

#[test]
fn minato_delivers_calibrated_workload_exactly_once() {
    let (wl, scale) = speech_small();
    let ds = synthetic_dataset(&wl, scale);
    let pipeline = work_pipeline_with_mode(&wl, WorkMode::Sleep);
    let loader = MinatoLoader::builder(ds, pipeline)
        .batch_size(8)
        .initial_workers(3)
        .max_workers(4)
        .warmup_samples(10)
        .build()
        .expect("valid configuration");
    let mut seen: HashMap<usize, usize> = HashMap::new();
    for batch in loader.iter() {
        for s in &batch.samples {
            *seen.entry(s.index).or_default() += 1;
            // Every transform ran.
            assert_eq!(s.steps_done, wl.steps.len());
        }
    }
    assert_eq!(seen.len(), 40);
    assert!(seen.values().all(|&c| c == 1));
}

#[test]
fn minato_flags_heavy_samples_slow() {
    // Larger scale for a wide light/heavy margin: light ≈ 2 ms, heavy
    // ≈ 12 ms, cutoff 6 ms.
    let mut wl = WorkloadSpec::speech(3.0);
    wl.n_samples = 40;
    let scale = 0.004;
    let ds = synthetic_dataset(&wl, scale);
    let loader = MinatoLoader::builder(ds, work_pipeline_with_mode(&wl, WorkMode::Sleep))
        .batch_size(8)
        .epochs(3)
        .initial_workers(3)
        .max_workers(4)
        .slow_workers(2)
        .timeout_policy(TimeoutPolicy::Fixed(Duration::from_millis(6)))
        .build()
        .expect("valid configuration");
    let mut slow_indices = Vec::new();
    for batch in loader.iter() {
        for m in &batch.meta {
            if m.slow {
                slow_indices.push(m.index);
            }
        }
    }
    assert!(!slow_indices.is_empty(), "heavy samples must be flagged");
    // Heavy samples are index % 5 == 0. OS scheduling jitter can push an
    // occasional light sample over the cutoff (the real system tolerates
    // the same), so assert statistically: ≥80% of flags are genuinely
    // heavy, and a clear majority of heavy executions were caught.
    let heavy_flags = slow_indices.iter().filter(|&&i| i % 5 == 0).count();
    assert!(
        heavy_flags as f64 >= 0.8 * slow_indices.len() as f64,
        "too many mis-flags: {slow_indices:?}"
    );
    // 8 heavy samples × 3 epochs = 24 heavy executions.
    assert!(
        heavy_flags >= 12,
        "too few heavy samples caught: {heavy_flags}"
    );
}

#[test]
fn torch_baseline_and_minato_agree_on_content() {
    let (wl, scale) = speech_small();
    let minato = {
        let loader = MinatoLoader::builder(
            synthetic_dataset(&wl, scale),
            work_pipeline_with_mode(&wl, WorkMode::Sleep),
        )
        .batch_size(8)
        .seed(11)
        .initial_workers(2)
        .max_workers(3)
        .build()
        .expect("valid configuration");
        let mut idx: Vec<usize> = loader
            .iter()
            .flat_map(|b| b.into_samples())
            .map(|s| s.index)
            .collect();
        idx.sort_unstable();
        idx
    };
    let torch = {
        let loader = TorchLoader::new(
            synthetic_dataset(&wl, scale),
            work_pipeline_with_mode(&wl, WorkMode::Sleep),
            TorchConfig {
                batch_size: 8,
                num_workers: 2,
                seed: 11,
                ..Default::default()
            },
        )
        .expect("valid configuration");
        let mut idx: Vec<usize> = loader
            .iter()
            .flat_map(|b| b.into_samples())
            .map(|s| s.index)
            .collect();
        idx.sort_unstable();
        idx
    };
    assert_eq!(minato, torch, "both loaders cover the same sample set");
}

#[test]
fn adaptive_scheduler_reacts_to_load() {
    // Underprovision the initial workers; the monitor must scale up.
    let (wl, scale) = speech_small();
    let loader = MinatoLoader::builder(
        synthetic_dataset(&wl, scale),
        work_pipeline_with_mode(&wl, WorkMode::Sleep),
    )
    .batch_size(4)
    .epochs(4)
    .initial_workers(1)
    .max_workers(4)
    .scheduler({
        let mut s = SchedulerConfig::paper_default(4);
        s.interval = Duration::from_millis(20);
        s
    })
    .build()
    .expect("valid configuration");
    let n: usize = loader.iter().map(|b| b.len()).sum();
    assert_eq!(n, 160);
    let trace = loader.trace();
    let max_workers_seen = trace.workers.max();
    assert!(
        max_workers_seen > 1.0,
        "scheduler never scaled up: {max_workers_seen}"
    );
}

#[test]
fn order_preserving_mode_round_trip() {
    let (wl, scale) = speech_small();
    let loader = MinatoLoader::builder(
        synthetic_dataset(&wl, scale),
        work_pipeline_with_mode(&wl, WorkMode::Sleep),
    )
    .batch_size(8)
    .shuffle(false)
    .order_preserving(true)
    .initial_workers(3)
    .max_workers(3)
    .build()
    .expect("valid configuration");
    let idx: Vec<usize> = loader
        .iter()
        .flat_map(|b| b.into_samples())
        .map(|s| s.index)
        .collect();
    assert_eq!(idx, (0..40).collect::<Vec<_>>(), "strict order required");
}

#[test]
fn simulator_and_real_loader_agree_on_slow_fraction() {
    // The sim and the threaded loader share the calibrated workload; the
    // fraction of slow-classified samples should be in the same ballpark
    // (≈ 20% heavy for the speech microbenchmark).
    let mut cfg = minato::sim::SimConfig::config_a(WorkloadSpec::speech(3.0));
    cfg.max_batches = 60;
    let sim = minato::sim::simulate_minato("minato", &cfg, minato::sim::ClassifyMode::Timeout);
    let sim_frac = sim.slow_flagged as f64 / sim.samples as f64;

    let (wl, scale) = speech_small();
    let loader = MinatoLoader::builder(
        synthetic_dataset(&wl, scale),
        work_pipeline_with_mode(&wl, WorkMode::Sleep),
    )
    .batch_size(8)
    .epochs(4)
    .initial_workers(3)
    .max_workers(4)
    .timeout_policy(TimeoutPolicy::Fixed(Duration::from_millis(3)))
    .build()
    .expect("valid configuration");
    let mut slow = 0usize;
    let mut total = 0usize;
    for b in loader.iter() {
        slow += b.slow_count();
        total += b.len();
    }
    let real_frac = slow as f64 / total as f64;
    assert!(
        (sim_frac - real_frac).abs() < 0.12,
        "sim {sim_frac:.3} vs real {real_frac:.3}"
    );
}
