//! Smoke tests mirroring each `examples/` program as a scaled-down
//! library call, so the examples' API surface cannot silently rot even
//! when nobody runs the binaries. (CI additionally compiles the real
//! example binaries via `cargo build --all-targets`.)

use minato::baselines::torch::{TorchConfig, TorchLoader};
use minato::core::prelude::*;
use minato::data::audio::{speech_pipeline, AudioClip};
use minato::data::volume::{segmentation_pipeline, Volume3D};
use minato::data::WorkloadSpec;
use minato::sim::{simulate_inorder, simulate_minato, ClassifyMode, DaliSimCfg, SimConfig};
use std::time::Duration;

/// `examples/quickstart.rs`: in-memory dataset, mixed-cost pipeline.
#[test]
fn quickstart_flow() {
    let dataset = VecDataset::new((0..64u32).collect::<Vec<_>>());
    let pipeline = Pipeline::new(vec![
        fn_transform("normalize", |x: u32| Ok(x % 97)),
        fn_transform("augment", |x: u32| {
            if x.is_multiple_of(8) {
                std::thread::sleep(Duration::from_millis(4));
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
            Ok(x)
        }),
        fn_transform("to-tensor", Ok),
    ]);
    let loader = MinatoLoader::builder(dataset, pipeline)
        .batch_size(16)
        .initial_workers(4)
        .max_workers(8)
        .timeout_policy(TimeoutPolicy::Fixed(Duration::from_millis(2)))
        .seed(42)
        .build()
        .expect("valid configuration");
    let mut total = 0;
    let mut slow = 0;
    for batch in loader.iter() {
        total += batch.len();
        slow += batch.slow_count();
    }
    assert_eq!(total, 64);
    assert!(slow >= 1, "every 8th sample sleeps past the fixed cutoff");
}

/// `examples/multi_epoch_cache.rs`: multi-epoch run with the cache on;
/// later epochs must be served from memory, pipeline executions must
/// stay below deliveries.
#[test]
fn multi_epoch_cache_flow() {
    let n = 64usize;
    let epochs = 3usize;
    let dataset = VecDataset::new((0..n as u32).collect::<Vec<_>>());
    let pipeline = Pipeline::new(vec![
        fn_transform("normalize", |x: u32| Ok(x % 97)),
        fn_transform("augment", |x: u32| {
            if x.is_multiple_of(8) {
                std::thread::sleep(Duration::from_millis(3));
            } else {
                std::thread::sleep(Duration::from_micros(150));
            }
            Ok(x)
        }),
    ]);
    let loader = MinatoLoader::builder(dataset, pipeline)
        .batch_size(16)
        .epochs(epochs)
        .seed(42)
        .initial_workers(4)
        .max_workers(4)
        .queue_capacity(16)
        .timeout_policy(TimeoutPolicy::Fixed(Duration::from_millis(1)))
        .cache_budget_bytes(1 << 20)
        .cache_policy(EvictionPolicy::CostAware)
        .cache_shards(4)
        .build()
        .expect("valid configuration");
    let delivered: usize = loader.iter().map(|b| b.len()).sum();
    assert_eq!(delivered, n * epochs);
    let stats = loader.stats();
    let cache = stats.cache.expect("cache enabled");
    assert!(cache.hits > 0, "later epochs must hit the cache");
    assert!(
        stats.samples_done < delivered as u64,
        "cache must save pipeline executions"
    );
}

/// `examples/image_segmentation.rs`: variable-size volumes through the
/// segmentation pipeline, Minato vs the in-order baseline.
#[test]
fn image_segmentation_flow() {
    fn dataset() -> FnDataset<Volume3D, impl Fn(usize) -> minato::core::error::Result<Volume3D>> {
        FnDataset::new(12, |i| {
            let side = 8 + (i * 7) % 12;
            Ok(Volume3D::generate([side, side, side], i as u64))
        })
    }
    let pipeline = segmentation_pipeline([6, 6, 6]);

    let loader = MinatoLoader::builder(dataset(), pipeline.clone())
        .batch_size(4)
        .initial_workers(2)
        .max_workers(3)
        .warmup_samples(4)
        .seed(7)
        .build()
        .expect("valid configuration");
    let minato_voxels: usize = loader
        .iter()
        .flat_map(|b| b.into_samples())
        .map(|v| v.len())
        .sum();
    assert_eq!(loader.stats().samples_done, 12);

    let torch = TorchLoader::new(
        dataset(),
        pipeline,
        TorchConfig {
            batch_size: 4,
            num_workers: 2,
            seed: 7,
            ..Default::default()
        },
    )
    .expect("valid configuration");
    let torch_voxels: usize = torch
        .iter()
        .flat_map(|b| b.into_samples())
        .map(|v| v.len())
        .sum();
    // Both loaders crop to the same target shape, so total voxels match.
    assert_eq!(minato_voxels, torch_voxels);
    assert!(minato_voxels > 0);
}

/// `examples/speech_pipeline.rs`: heavy-fifth audio workload; the
/// audio–transcript pairing must survive reordering.
#[test]
fn speech_pipeline_flow() {
    let dataset = FnDataset::new(20, |i| {
        let seconds = if i % 5 == 0 { 0.8 } else { 0.2 };
        Ok(AudioClip::generate(seconds, 8_000, i as u64))
    });
    let pipeline = speech_pipeline(2, 12);
    let loader = MinatoLoader::builder(dataset, pipeline)
        .batch_size(5)
        .initial_workers(2)
        .max_workers(3)
        .slow_workers(1)
        .warmup_samples(6)
        .seed(3)
        .build()
        .expect("valid configuration");
    let mut clips = 0usize;
    for batch in loader.iter() {
        clips += batch.len();
        for (clip, meta) in batch.samples.iter().zip(&batch.meta) {
            let reference = AudioClip::generate(
                if meta.index % 5 == 0 { 0.8 } else { 0.2 },
                8_000,
                meta.index as u64,
            );
            assert_eq!(
                clip.transcript, reference.transcript,
                "audio-text pairing broken under reordering"
            );
        }
    }
    assert_eq!(clips, 20);
}

/// `examples/memory_constrained.rs`: cache-limited simulation; Minato
/// must beat the in-order baseline end to end.
#[test]
fn memory_constrained_flow() {
    let mut cfg = SimConfig::config_b(WorkloadSpec::image_segmentation());
    cfg.dataset_replication = 2;
    cfg.memory_bytes = 20_000_000_000;
    cfg.max_batches = 80;

    let pytorch = simulate_inorder("PyTorch", &cfg, None);
    let dali = simulate_inorder(
        "DALI",
        &cfg,
        Some(DaliSimCfg {
            speedup: 10.0,
            queue_depth: 2,
        }),
    );
    let minato = simulate_minato("Minato", &cfg, ClassifyMode::Timeout);

    assert!(pytorch.train_time_s > 0.0);
    assert!(dali.train_time_s > 0.0);
    assert!(
        minato.train_time_s < pytorch.train_time_s,
        "Minato {:.0}s must beat in-order {:.0}s",
        minato.train_time_s,
        pytorch.train_time_s
    );
}

/// `examples/pooled_hot_path.rs`: pooled in-place execution on the
/// volumetric pipeline; the recycle loop must turn and delivery must
/// match the unpooled loader sample for sample.
#[test]
fn pooled_hot_path_flow() {
    let n = 48usize;
    let make = |pool_budget: u64| {
        let dataset = FnDataset::new(n, |i| {
            let d = 12 + (i % 3) * 6;
            Ok(Volume3D::generate([d, d, d], i as u64))
        });
        let mut b = MinatoLoader::builder(dataset, segmentation_pipeline([8, 8, 8]))
            .batch_size(8)
            .seed(9)
            .initial_workers(2)
            .max_workers(3);
        if pool_budget > 0 {
            b = b.pool_budget_bytes(pool_budget);
        }
        b.build().expect("valid configuration")
    };
    let collect = |loader: &MinatoLoader<_>| {
        let mut all: Vec<Volume3D> = Vec::new();
        for batch in loader.iter() {
            all.extend(batch.samples.iter().cloned());
        }
        all.sort_by_key(|v| v.seed);
        all
    };
    let unpooled = make(0);
    let base = collect(&unpooled);
    assert!(unpooled.stats().pool.is_none());

    let pooled = make(64 << 20);
    let got = collect(&pooled);
    assert_eq!(got, base, "pooling must not change delivered samples");
    let ps = pooled.stats().pool.expect("pool on").combined();
    assert!(ps.recycled > 0, "recycle loop must turn: {ps:?}");
    assert!(ps.hits > 0, "steady state must reuse buffers: {ps:?}");
}

/// `examples/shared_executor.rs`: two loaders as tenants of one shared
/// role-fluid pool; both must deliver fully and the pool must survive
/// tenant churn.
#[test]
fn shared_executor_flow() {
    use minato::core::loader::ExecutorConfig;
    let pool = SharedExecutor::new(4);
    let run = |pool: SharedExecutor, n: u32, slow_every: u32| {
        let dataset = VecDataset::new((0..n).collect::<Vec<_>>());
        let pipeline = Pipeline::new(vec![fn_transform("augment", move |x: u32| {
            if x.is_multiple_of(slow_every) {
                std::thread::sleep(Duration::from_millis(4));
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
            Ok(x)
        })]);
        let loader = MinatoLoader::builder(dataset, pipeline)
            .batch_size(8)
            .initial_workers(2)
            .max_workers(2)
            .slow_workers(1)
            .timeout_policy(TimeoutPolicy::Fixed(Duration::from_millis(1)))
            .executor(ExecutorConfig::Shared(pool))
            .build()
            .expect("tenant builds");
        loader.iter().map(|b| b.len()).sum::<usize>()
    };
    let p2 = pool.clone();
    let handle = std::thread::spawn(move || run(p2, 48, 4));
    assert_eq!(run(pool.clone(), 64, 8), 64);
    assert_eq!(handle.join().expect("tenant thread"), 48);
    // A follow-up tenant reuses the still-live pool.
    assert_eq!(run(pool, 32, 8), 32);
}

/// `examples/resume_after_crash.rs`: checkpoint mid-run, drop the
/// loader, resume from the serialized bytes; the two halves must be an
/// exact, duplicate-free partition of the run.
#[test]
fn resume_after_crash_flow() {
    use std::collections::BTreeSet;
    let n = 40u32;
    let epochs = 2usize;
    let build = || {
        let dataset = VecDataset::new((0..n).collect::<Vec<_>>());
        MinatoLoader::builder(dataset, Pipeline::identity())
            .batch_size(4)
            .epochs(epochs)
            .seed(7)
            .initial_workers(2)
            .max_workers(4)
            .checkpoint(true)
    };

    let first = build().build().expect("loader builds");
    let mut pre = BTreeSet::new();
    for _ in 0..5 {
        let batch = first.next_batch(0).expect("early batches exist");
        pre.extend(batch.meta.iter().map(|m| m.seq));
    }
    let bytes = first.checkpoint().expect("checkpointing enabled").encode();
    drop(first); // The crash.

    let ckpt = LoaderCheckpoint::decode(&bytes).expect("intact bytes");
    let resumed = build().resume_from(ckpt).build().expect("resume builds");
    let mut post = BTreeSet::new();
    while let Some(batch) = resumed.next_batch(0) {
        post.extend(batch.meta.iter().map(|m| m.seq));
    }

    assert!(pre.is_disjoint(&post), "resume must not re-deliver");
    let total = (n as usize * epochs) as u64;
    let union: BTreeSet<u64> = pre.union(&post).copied().collect();
    assert_eq!(union, (0..total).collect::<BTreeSet<u64>>());
}
