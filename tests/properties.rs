//! Property-based tests over the core data structures and invariants.

use minato::core::batch::ReorderBuffer;
use minato::core::dataset::{EpochSampler, Sampler};
use minato::core::queue::{MinatoQueue, PopResult};
use minato::core::scheduler::{SchedulerConfig, WorkerScheduler};
use minato::metrics::{quantile_sorted, Reservoir, Summary};
use minato::sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Quantiles are monotone in `q` and bounded by min/max.
    #[test]
    fn quantiles_monotone_and_bounded(
        mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        xs.sort_by(f64::total_cmp);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = quantile_sorted(&xs, lo).unwrap();
        let b = quantile_sorted(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        prop_assert!(a >= xs[0] - 1e-9);
        prop_assert!(b <= xs[xs.len() - 1] + 1e-9);
    }

    /// Summary invariants: min ≤ median ≤ p75 ≤ p90 ≤ max, avg within
    /// [min, max].
    #[test]
    fn summary_order_invariants(xs in proptest::collection::vec(-1e5f64..1e5, 1..200)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.max + 1e-9);
        prop_assert!(s.avg >= s.min - 1e-9 && s.avg <= s.max + 1e-9);
        prop_assert!(s.std >= 0.0);
    }

    /// The reservoir window holds exactly the most recent values.
    #[test]
    fn reservoir_keeps_recent_window(
        xs in proptest::collection::vec(0.0f64..1e6, 1..300),
        cap in 1usize..64,
    ) {
        let mut r = Reservoir::new(cap);
        for &x in &xs {
            r.record(x);
        }
        prop_assert_eq!(r.len(), xs.len().min(cap));
        prop_assert_eq!(r.total_seen(), xs.len() as u64);
        // Max over the window equals max over the last `cap` inputs.
        let tail = &xs[xs.len().saturating_sub(cap)..];
        let expect = tail.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(r.quantile(1.0).unwrap(), expect);
    }

    /// Reorder buffers emit every pushed item exactly once, in sequence
    /// order, for any permutation of arrivals.
    #[test]
    fn reorder_buffer_is_a_sorting_network(perm in proptest::sample::subsequence((0..40u64).collect::<Vec<_>>(), 40)) {
        // `subsequence` of the full range with len 40 is a no-op shuffle
        // guard; shuffle via index mapping instead.
        let mut arrivals = perm;
        arrivals.reverse();
        let mut rb = ReorderBuffer::new(0);
        let mut out = Vec::new();
        for &seq in &arrivals {
            out.extend(rb.push(seq, seq));
        }
        out.extend(rb.drain_remaining());
        let expect: Vec<u64> = (0..40).collect();
        prop_assert_eq!(out, expect);
    }

    /// Queue FIFO order survives arbitrary interleaved put/pop programs.
    #[test]
    fn queue_preserves_fifo(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let q: MinatoQueue<u64> = MinatoQueue::new("prop", 64);
        let mut next_put = 0u64;
        let mut next_pop = 0u64;
        for is_put in ops {
            if is_put {
                if q.try_put(next_put).is_ok() {
                    next_put += 1;
                }
            } else if let PopResult::Item(v) = q.try_pop() {
                prop_assert_eq!(v, next_pop);
                next_pop += 1;
            }
        }
        prop_assert!(next_pop <= next_put);
        prop_assert_eq!(q.len() as u64, next_put - next_pop);
    }

    /// Every epoch of the sampler is a permutation; totals always match.
    #[test]
    fn sampler_epochs_are_permutations(len in 1usize..64, epochs in 1usize..4, seed in any::<u64>()) {
        let s = EpochSampler::new(len, epochs, true, seed);
        let mut all = Vec::new();
        while let Some(t) = s.next() {
            all.push(t);
        }
        prop_assert_eq!(all.len(), len * epochs);
        for e in 0..epochs {
            let mut idx: Vec<usize> =
                all[e * len..(e + 1) * len].iter().map(|t| t.index).collect();
            idx.sort_unstable();
            let expect: Vec<usize> = (0..len).collect();
            prop_assert_eq!(idx, expect);
        }
        // Sequence numbers are 0..total in order.
        prop_assert!(all.iter().enumerate().all(|(i, t)| t.seq == i as u64));
    }

    /// The scheduler decision always lands in [min_workers, max_workers].
    #[test]
    fn scheduler_bounds_hold(
        current in 1usize..256,
        q_len in 0usize..512,
        q_cap in 1usize..512,
        cpu in 0.0f64..1.5,
        max_workers in 1usize..128,
    ) {
        let mut s = WorkerScheduler::new(SchedulerConfig::paper_default(max_workers));
        let next = s.decide(current, q_len, q_cap, cpu);
        prop_assert!(next >= 1);
        prop_assert!(next <= max_workers);
        // One decision moves by at most the clip.
        prop_assert!((next as i64 - (current as i64).min(max_workers as i64)).abs() <= 2 || next == max_workers || next == 1);
    }

    /// Virtual-time arithmetic: addition is monotone, subtraction
    /// saturates.
    #[test]
    fn sim_time_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let t = SimTime(a);
        let d = SimDuration(b);
        prop_assert!(t + d >= t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t - (t + d), SimDuration::ZERO);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end loader delivery: for arbitrary small configurations the
    /// loader delivers every sample exactly once.
    #[test]
    fn loader_delivers_exactly_once(
        n in 1usize..60,
        batch in 1usize..9,
        workers in 1usize..4,
        epochs in 1usize..3,
        chunk in 1usize..10,
    ) {
        use minato::core::prelude::*;
        let ds = VecDataset::new((0..n as u32).collect::<Vec<_>>());
        let p = Pipeline::new(vec![fn_transform("id", |x: u32| Ok(x))]);
        let loader = MinatoLoader::builder(ds, p)
            .batch_size(batch)
            .epochs(epochs)
            .initial_workers(workers)
            .max_workers(workers)
            .ticket_chunk(chunk)
            .build()
            .expect("valid configuration");
        let mut counts = std::collections::HashMap::new();
        for b in loader.iter() {
            for s in b.into_samples() {
                *counts.entry(s).or_insert(0usize) += 1;
            }
        }
        prop_assert_eq!(counts.len(), n);
        prop_assert!(counts.values().all(|&c| c == epochs));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Single-threaded equivalence: a program of batched puts/pops
    /// observes exactly the FIFO sequence the item-at-a-time API would.
    #[test]
    fn batched_queue_ops_match_single_ops(
        chunks in proptest::collection::vec(1usize..12, 1..16),
        pop_max in 1usize..12,
        cap in 1usize..128,
    ) {
        let total: usize = chunks.iter().sum();
        // Keep every chunked put non-blocking for the single-threaded
        // program: the queue must hold the whole input at once.
        let cap = cap.max(total);
        let batched: MinatoQueue<u64> = MinatoQueue::new("batched", cap);
        let single: MinatoQueue<u64> = MinatoQueue::new("single", cap);
        let mut next = 0u64;
        for chunk in &chunks {
            let items: Vec<u64> = (next..next + *chunk as u64).collect();
            next += *chunk as u64;
            for &i in &items {
                single.put(i).expect("open");
            }
            batched.put_many(items).expect("open");
        }
        batched.close();
        single.close();
        let mut via_batched = Vec::new();
        loop {
            let burst = batched.pop_many(pop_max);
            if burst.is_empty() {
                break;
            }
            prop_assert!(burst.len() <= pop_max);
            via_batched.extend(burst);
        }
        let mut via_single = Vec::new();
        while let Some(v) = single.pop() {
            via_single.push(v);
        }
        prop_assert_eq!(via_batched, via_single);
        prop_assert_eq!(single.total_puts(), batched.total_puts());
        prop_assert_eq!(single.total_pops(), batched.total_pops());
    }

    /// MPMC equivalence: under concurrent interleaving of batched
    /// producers and batched consumers — with a capacity small enough to
    /// force `put_many` to split chunks into bursts — nothing is lost,
    /// duplicated, or reordered within a producer's stream.
    #[test]
    fn batched_queue_mpmc_no_loss_no_dup(
        producers in 1usize..4,
        consumers in 1usize..4,
        per_producer in 1usize..40,
        chunk in 1usize..9,
        pop_max in 1usize..9,
        cap in 1usize..12,
    ) {
        use std::sync::Arc;
        let q: Arc<MinatoQueue<u64>> = Arc::new(MinatoQueue::new("mpmc", cap));
        let push: Vec<_> = (0..producers as u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let items: Vec<u64> =
                        (0..per_producer as u64).map(|i| p * 10_000 + i).collect();
                    for c in items.chunks(chunk) {
                        q.put_many(c.to_vec()).expect("open");
                    }
                })
            })
            .collect();
        let pull: Vec<_> = (0..consumers)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let burst = q.pop_many(pop_max);
                        if burst.is_empty() {
                            return got;
                        }
                        got.extend(burst);
                    }
                })
            })
            .collect();
        for h in push {
            h.join().expect("producer");
        }
        q.close();
        let streams: Vec<Vec<u64>> = pull.into_iter().map(|h| h.join().expect("consumer")).collect();
        // Each consumer's stream is per-producer monotone: bursts never
        // reorder one producer's items.
        for s in &streams {
            for p in 0..producers as u64 {
                let mine: Vec<u64> = s.iter().copied().filter(|v| v / 10_000 == p).collect();
                prop_assert!(mine.windows(2).all(|w| w[0] < w[1]), "reordered within producer");
            }
        }
        let mut all: Vec<u64> = streams.into_iter().flatten().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), producers * per_producer, "lost or duplicated items");
    }
}
